// Tests for the snapshot+delta control broadcast pipeline: server-side
// DeltaBroadcaster, client-side DeltaMatrixTracker, full-vs-delta decision
// parity, and the windowed-wraparound property test from the issue.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "client/delta_tracker.h"
#include "common/rng.h"
#include "server/delta_broadcast.h"
#include "sim/broadcast_sim.h"
#include "sim/concurrent_sim.h"

namespace bcc {
namespace {

// ---------------------------------------------------------------------------
// DeltaBroadcaster units
// ---------------------------------------------------------------------------

TEST(DeltaBroadcasterTest, FirstCycleIsAScheduledRefresh) {
  DeltaBroadcaster b(4, CycleStampCodec(8), /*refresh_period=*/5);
  FMatrix m(4);
  const DeltaControl ctl = b.BuildControl(m, {}, 1);
  EXPECT_TRUE(ctl.full_refresh);
  EXPECT_TRUE(ctl.scheduled);
  EXPECT_TRUE(ctl.entries.empty());
  EXPECT_EQ(ctl.control_bits, ctl.full_bits);
  EXPECT_EQ(ctl.full_bits, FullMatrixControlBits(4, 8));
}

TEST(DeltaBroadcasterTest, RefreshEveryPeriodCyclesAndDeltasBetween) {
  const CycleStampCodec codec(8);
  DeltaBroadcaster b(4, codec, /*refresh_period=*/3);
  FMatrix m(4);
  m.EnableDirtyTracking();
  Cycle cycle = 1;
  std::vector<bool> refreshes;
  for (; cycle <= 9; ++cycle) {
    m.ApplyCommit({}, std::vector<ObjectId>{static_cast<ObjectId>(cycle % 4)}, cycle);
    const DeltaControl ctl = b.BuildControl(m, m.TakeTouchedColumns(), cycle);
    refreshes.push_back(ctl.full_refresh);
    EXPECT_LE(ctl.control_bits, ctl.full_bits) << "cycle " << cycle;
    if (!ctl.full_refresh) {
      EXPECT_EQ(ctl.base_cycle, cycle - 1);
      EXPECT_EQ(ctl.control_bits, DeltaCodec::EncodedBits(ctl.entries.size(), 4, 8));
    }
  }
  // Cycle 1 (first), then every 3rd cycle after the last refresh.
  const std::vector<bool> expect = {true, false, false, true, false, false, true, false, false};
  EXPECT_EQ(refreshes, expect);
}

TEST(DeltaBroadcasterTest, DeltaEntriesReconstructTheMatrix) {
  const CycleStampCodec codec(8);
  const uint32_t n = 6;
  DeltaBroadcaster b(n, codec, /*refresh_period=*/4);
  FMatrix server(n);
  server.EnableDirtyTracking();
  FMatrix client(n);
  Rng rng(3);
  bool synced = false;
  for (Cycle cycle = 1; cycle <= 30; ++cycle) {
    const uint32_t commits = static_cast<uint32_t>(rng.NextBounded(3));
    for (uint32_t t = 0; t < commits; ++t) {
      const auto reads = rng.SampleWithoutReplacement(n, static_cast<uint32_t>(rng.NextBounded(3)));
      const auto writes =
          rng.SampleWithoutReplacement(n, 1 + static_cast<uint32_t>(rng.NextBounded(2)));
      server.ApplyCommit(reads, writes, cycle);
    }
    const DeltaControl ctl = b.BuildControl(server, server.TakeTouchedColumns(), cycle);
    if (ctl.full_refresh) {
      client = server;
      synced = true;
    } else if (synced) {
      DeltaCodec::Apply(&client, ctl.entries, codec, cycle);
    }
    // Within the codec window (cycle <= 255 here) decode is exact, so the
    // reconstruction must be bit-identical, not just congruent.
    ASSERT_TRUE(client == server) << "cycle " << cycle;
  }
}

TEST(DeltaBroadcasterTest, AdaptiveRefreshWhenDeltaWouldNotBeatFullMatrix) {
  // n = 2, ts = 8: full matrix is 32 bits; any nonempty delta costs
  // 32 + k * (1 + 1 + 8) > 32, so every changing cycle falls back to an
  // unscheduled (adaptive) refresh.
  const CycleStampCodec codec(8);
  DeltaBroadcaster b(2, codec, /*refresh_period=*/100);
  FMatrix m(2);
  m.EnableDirtyTracking();
  (void)b.BuildControl(m, {}, 1);  // initial scheduled refresh
  m.ApplyCommit({}, std::vector<ObjectId>{0}, 2);
  const DeltaControl ctl = b.BuildControl(m, m.TakeTouchedColumns(), 2);
  EXPECT_TRUE(ctl.full_refresh);
  EXPECT_FALSE(ctl.scheduled);
  EXPECT_EQ(ctl.control_bits, ctl.full_bits);
  // At n = 2 even an empty delta's 32-bit header ties the full matrix, so
  // quiet cycles also refresh (>= threshold). With a bigger matrix a quiet
  // cycle ships only the header.
  const DeltaControl tiny_quiet = b.BuildControl(m, {}, 3);
  EXPECT_TRUE(tiny_quiet.full_refresh);
  EXPECT_EQ(tiny_quiet.control_bits, tiny_quiet.full_bits);

  DeltaBroadcaster big(4, codec, /*refresh_period=*/100);
  FMatrix m4(4);
  (void)big.BuildControl(m4, {}, 1);
  const DeltaControl quiet = big.BuildControl(m4, {}, 2);
  EXPECT_FALSE(quiet.full_refresh);
  EXPECT_TRUE(quiet.entries.empty());
  EXPECT_EQ(quiet.control_bits, 32u);
}

// ---------------------------------------------------------------------------
// DeltaMatrixTracker units
// ---------------------------------------------------------------------------

DeltaControl MakeRefresh(Cycle cycle, uint32_t n, unsigned ts) {
  DeltaControl ctl;
  ctl.cycle = cycle;
  ctl.full_refresh = true;
  ctl.scheduled = true;
  ctl.base_cycle = cycle;
  ctl.full_bits = ctl.control_bits = FullMatrixControlBits(n, ts);
  return ctl;
}

TEST(DeltaMatrixTrackerTest, StartsDesyncedAndSyncsOnRefresh) {
  DeltaMatrixTracker tracker(3, CycleStampCodec(8));
  EXPECT_FALSE(tracker.synced());
  EXPECT_TRUE(tracker.Unusable(1));

  FMatrix on_air(3);
  on_air.Set(1, 2, 4);
  tracker.Observe(MakeRefresh(5, 3, 8), on_air);
  EXPECT_TRUE(tracker.synced());
  EXPECT_EQ(tracker.last_sync(), 5u);
  EXPECT_FALSE(tracker.Unusable(5));
  EXPECT_EQ(tracker.matrix().At(1, 2), 4u);
}

TEST(DeltaMatrixTrackerTest, AppliesContiguousDeltasAndDesyncsOnGaps) {
  const CycleStampCodec codec(8);
  DeltaMatrixTracker tracker(3, codec);
  FMatrix on_air(3);
  tracker.Observe(MakeRefresh(1, 3, 8), on_air);

  DeltaControl delta;
  delta.cycle = 2;
  delta.base_cycle = 1;
  delta.entries = {{0, 1, codec.Encode(2)}};
  tracker.Observe(delta, on_air);
  EXPECT_TRUE(tracker.synced());
  EXPECT_EQ(tracker.last_sync(), 2u);
  EXPECT_EQ(tracker.matrix().At(0, 1), 2u);

  // A gap (cycle 4 on top of last_sync 2) must desync, not apply.
  DeltaControl gap;
  gap.cycle = 4;
  gap.base_cycle = 3;
  gap.entries = {{0, 0, codec.Encode(4)}};
  tracker.Observe(gap, on_air);
  EXPECT_FALSE(tracker.synced());
  EXPECT_TRUE(tracker.Unusable(4));
  EXPECT_EQ(tracker.matrix().At(0, 0), 0u) << "a gapped delta must not be applied";

  // Still desynced on the next contiguous-looking delta...
  DeltaControl next;
  next.cycle = 5;
  next.base_cycle = 4;
  tracker.Observe(next, on_air);
  EXPECT_FALSE(tracker.synced());

  // ...until a refresh arrives.
  tracker.Observe(MakeRefresh(6, 3, 8), on_air);
  EXPECT_TRUE(tracker.synced());
  EXPECT_EQ(tracker.last_sync(), 6u);
}

TEST(DeltaMatrixTrackerTest, DuplicatedAndStaleDeltasAreIgnoredWhileSynced) {
  // A lossy channel can replay control blocks the tracker already absorbed
  // (e.g. a client that stalls and re-ingests a cycle boundary). Anything at
  // or before last_sync must be dropped without desyncing — and without
  // re-applying stamps, which could only move them backwards.
  const CycleStampCodec codec(8);
  DeltaMatrixTracker tracker(3, codec);
  FMatrix on_air(3);
  tracker.Observe(MakeRefresh(4, 3, 8), on_air);

  DeltaControl delta;
  delta.cycle = 5;
  delta.base_cycle = 4;
  delta.entries = {{1, 2, codec.Encode(5)}};
  tracker.Observe(delta, on_air);
  ASSERT_TRUE(tracker.synced());
  ASSERT_EQ(tracker.last_sync(), 5u);
  ASSERT_EQ(tracker.matrix().At(1, 2), 5u);

  // Exact duplicate of the delta just applied: ignored, still synced.
  tracker.Observe(delta, on_air);
  EXPECT_TRUE(tracker.synced());
  EXPECT_EQ(tracker.last_sync(), 5u);
  EXPECT_EQ(tracker.matrix().At(1, 2), 5u);

  // A stale delta from an older cycle (would regress the stamp): ignored.
  DeltaControl stale;
  stale.cycle = 3;
  stale.base_cycle = 2;
  stale.entries = {{1, 2, codec.Encode(2)}};
  tracker.Observe(stale, on_air);
  EXPECT_TRUE(tracker.synced());
  EXPECT_EQ(tracker.last_sync(), 5u);
  EXPECT_EQ(tracker.matrix().At(1, 2), 5u) << "a stale delta must never lower a stamp";

  // The contiguous next delta still applies after the noise.
  DeltaControl next;
  next.cycle = 6;
  next.base_cycle = 5;
  next.entries = {{0, 0, codec.Encode(6)}};
  tracker.Observe(next, on_air);
  EXPECT_TRUE(tracker.synced());
  EXPECT_EQ(tracker.last_sync(), 6u);
  EXPECT_EQ(tracker.matrix().At(0, 0), 6u);
}

TEST(DeltaMatrixTrackerTest, StaleRefreshWhileSyncedIsIgnored) {
  const CycleStampCodec codec(8);
  DeltaMatrixTracker tracker(3, codec);
  FMatrix current(3);
  current.Set(0, 1, 7);
  tracker.Observe(MakeRefresh(7, 3, 8), current);
  ASSERT_TRUE(tracker.synced());
  ASSERT_EQ(tracker.matrix().At(0, 1), 7u);

  // A replayed refresh from cycle 2 carries older stamps; applying it would
  // be exactly the false-acceptance hazard. It must be dropped.
  FMatrix old(3);
  tracker.Observe(MakeRefresh(2, 3, 8), old);
  EXPECT_TRUE(tracker.synced());
  EXPECT_EQ(tracker.last_sync(), 7u);
  EXPECT_EQ(tracker.matrix().At(0, 1), 7u);

  // A fresh refresh still wins.
  FMatrix newer(3);
  newer.Set(0, 1, 9);
  tracker.Observe(MakeRefresh(9, 3, 8), newer);
  EXPECT_TRUE(tracker.synced());
  EXPECT_EQ(tracker.last_sync(), 9u);
  EXPECT_EQ(tracker.matrix().At(0, 1), 9u);
}

TEST(DeltaMatrixTrackerTest, BeyondDecodeWindowGuard) {
  DeltaMatrixTracker tracker(2, CycleStampCodec(3));  // window: 7 cycles
  FMatrix on_air(2);
  tracker.Observe(MakeRefresh(10, 2, 3), on_air);
  EXPECT_FALSE(tracker.BeyondDecodeWindow(17));  // 17 - 10 == max_cycles
  EXPECT_TRUE(tracker.BeyondDecodeWindow(18));
  EXPECT_TRUE(tracker.Unusable(18));
}

// ---------------------------------------------------------------------------
// Full-vs-delta decision parity (CrossCheckEngines-style)
// ---------------------------------------------------------------------------

SimConfig SmallDeltaConfig() {
  SimConfig config;
  config.algorithm = Algorithm::kFMatrix;
  config.num_objects = 20;
  config.object_size_bits = 64;
  config.client_txn_length = 3;
  config.server_txn_length = 4;
  config.server_txn_interval = 3000;
  config.mean_inter_op_delay = 800;
  config.mean_inter_txn_delay = 1500;
  config.num_client_txns = 100000;  // cutoff comes from stop_after_cycles
  config.warmup_txns = 1;
  config.timestamp_bits = 8;
  config.stop_after_cycles = 60;
  config.delta_refresh_period = 8;
  return config;
}

TEST(DeltaParityTest, FullAndDeltaBroadcastDecideIdentically) {
  for (uint64_t seed : {7u, 21u, 99u}) {
    SimConfig config = SmallDeltaConfig();
    config.seed = seed;
    const Status status = CrossCheckDeltaBroadcast(config);
    EXPECT_TRUE(status.ok()) << "seed " << seed << ": " << status.ToString();
  }
}

TEST(DeltaParityTest, ParityHoldsWithMultipleClients) {
  SimConfig config = SmallDeltaConfig();
  config.num_clients = 3;
  config.seed = 5;
  const Status status = CrossCheckDeltaBroadcast(config);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(DeltaParityTest, ParityHoldsAtRefreshPeriodOne) {
  // Period 1 degenerates to "full matrix every cycle" — the accounting must
  // then equal the baseline exactly.
  SimConfig config = SmallDeltaConfig();
  config.delta_refresh_period = 1;
  const Status status = CrossCheckDeltaBroadcast(config);
  EXPECT_TRUE(status.ok()) << status.ToString();

  SimConfig delta = config;
  delta.delta_broadcast = true;
  delta.num_client_txns = 1000;
  BroadcastSim sim(delta);
  const auto summary = sim.Run();
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->delta_refresh_cycles, summary->delta_cycles);
  EXPECT_EQ(summary->delta_control_bits, summary->full_control_bits);
}

TEST(DeltaModeTest, RunReportsDeltaAccounting) {
  SimConfig config = SmallDeltaConfig();
  config.delta_broadcast = true;
  config.num_client_txns = 1000;
  BroadcastSim sim(config);
  const auto summary = sim.Run();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->delta_cycles, summary->cycles_elapsed);
  EXPECT_GE(summary->delta_refresh_cycles, 1u);
  EXPECT_LE(summary->delta_control_bits, summary->full_control_bits);
  EXPECT_EQ(summary->delta_stall_waits, 0u) << "no stalls without a forced desync";
  EXPECT_TRUE(sim.VerifyDeltaTrackers().ok());
}

TEST(DeltaModeTest, ForcedDesyncStallsUntilRefreshThenResyncs) {
  SimConfig config = SmallDeltaConfig();
  config.delta_broadcast = true;
  config.num_client_txns = 1000;
  config.delta_refresh_period = 8;
  config.delta_desync_at_cycle = 10;  // mid refresh-interval
  BroadcastSim sim(config);
  const auto summary = sim.Run();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  // The desynced clients must have stalled at least once and resynced at the
  // next scheduled refresh; by the final cycle the tracker is valid again.
  EXPECT_GE(summary->delta_stall_waits, 1u);
  const Status trackers = sim.VerifyDeltaTrackers();
  EXPECT_TRUE(trackers.ok()) << trackers.ToString();
}

TEST(DeltaModeTest, OracleAuditPassesInDeltaMode) {
  SimConfig config = SmallDeltaConfig();
  config.delta_broadcast = true;
  config.record_history = true;
  config.num_client_txns = 1000;
  BroadcastSim sim(config);
  const auto summary = sim.Run();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  const Status oracle = sim.VerifyOracle();
  EXPECT_TRUE(oracle.ok()) << oracle.ToString();
}

TEST(DeltaModeTest, ConfigValidationRejectsUnsupportedCombinations) {
  SimConfig config = SmallDeltaConfig();
  config.delta_broadcast = true;

  SimConfig bad = config;
  bad.algorithm = Algorithm::kRMatrix;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());

  bad = config;
  bad.use_wire_codec = false;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());

  bad = config;
  bad.enable_cache = true;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());

  bad = config;
  bad.num_groups = 4;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());

  bad = config;
  bad.timestamp_bits = 3;
  bad.delta_refresh_period = 8;  // > 2^3 - 1
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());

  bad = config;
  bad.delta_refresh_period = 0;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());

  // The concurrent engine does not support delta mode yet.
  bad = config;
  bad.record_decisions = true;
  ConcurrentSim concurrent(bad);
  EXPECT_TRUE(concurrent.Run().status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Windowed-wraparound property test (issue satellite): run for more than
// 2^ts cycles at ts in {2, 3}, cross-check the delta-reconstructed client
// matrices against the server's unbounded-cycle F-Matrix, and verify
// decisions match full-matrix broadcast (err-on-abort is the codec's
// property, proven in cycle_stamp_test; here decisions must be *identical*
// because both modes consult congruent stamps).
// ---------------------------------------------------------------------------

class WraparoundPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(WraparoundPropertyTest, DeltaReconstructionSurvivesTimestampWraparound) {
  const unsigned ts_bits = GetParam();
  const uint64_t window = (uint64_t{1} << ts_bits);
  SimConfig config;
  config.algorithm = Algorithm::kFMatrix;
  config.num_objects = 12;
  config.object_size_bits = 64;
  config.client_txn_length = 2;
  config.server_txn_length = 3;
  config.server_txn_interval = 2500;
  config.mean_inter_op_delay = 500;
  config.mean_inter_txn_delay = 900;
  config.num_client_txns = 1000000;
  config.warmup_txns = 1;
  config.timestamp_bits = ts_bits;
  config.delta_refresh_period = window - 1;  // the legal maximum
  config.stop_after_cycles = 6 * window;     // well past several wraparounds
  config.seed = 11 + ts_bits;

  // 1. Decision parity with the full-matrix broadcast across wraparound.
  const Status parity = CrossCheckDeltaBroadcast(config);
  EXPECT_TRUE(parity.ok()) << "ts=" << ts_bits << ": " << parity.ToString();

  // 2. Reconstruction congruence against the server's unbounded matrix plus
  // the end-to-end oracle audit (client reads consistent despite aliasing).
  SimConfig delta = config;
  delta.delta_broadcast = true;
  delta.record_history = true;
  BroadcastSim sim(delta);
  const auto summary = sim.Run();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_GT(summary->cycles_elapsed, window) << "run must outlive the stamp window";
  EXPECT_LE(summary->delta_control_bits, summary->full_control_bits);
  const Status trackers = sim.VerifyDeltaTrackers();
  EXPECT_TRUE(trackers.ok()) << "ts=" << ts_bits << ": " << trackers.ToString();
  const Status oracle = sim.VerifyOracle();
  EXPECT_TRUE(oracle.ok()) << "ts=" << ts_bits << ": " << oracle.ToString();
}

INSTANTIATE_TEST_SUITE_P(TinyStamps, WraparoundPropertyTest, ::testing::Values(2u, 3u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "ts" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace bcc
