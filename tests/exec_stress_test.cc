// Concurrency stress for the parallel update engine — the workloads the CI
// TSan job runs under `ctest -L exec`. Larger batches, more workers, and a
// high-contention variant shake out latch ordering and happens-before bugs
// that the small deterministic tests cannot reach.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "server/exec/txn_processor.h"

namespace bcc {
namespace {

struct StressCase {
  UpdateScheme scheme;
  uint32_t num_objects;  // fewer objects = more contention
  const char* name;
};

class ExecStressTest : public ::testing::TestWithParam<StressCase> {};

TEST_P(ExecStressTest, ConcurrentBatchesStaySerializable) {
  const StressCase& sc = GetParam();
  constexpr uint32_t kWorkers = 4;
  constexpr uint32_t kBatches = 4;
  constexpr uint32_t kTxnsPerBatch = 32;

  Rng rng(0xbccull * sc.num_objects + static_cast<uint64_t>(sc.scheme));
  TxnProcessor proc(sc.num_objects, sc.scheme, kWorkers);
  std::vector<CommittedServerTxn> all;
  TxnId next_id = 1;
  for (uint32_t batch = 0; batch < kBatches; ++batch) {
    std::vector<ServerTxn> txns;
    for (uint32_t i = 0; i < kTxnsPerBatch; ++i) {
      ServerTxn t;
      t.id = next_id++;
      t.read_set =
          rng.SampleWithoutReplacement(sc.num_objects, static_cast<uint32_t>(rng.NextInt(0, 3)));
      t.write_set =
          rng.SampleWithoutReplacement(sc.num_objects, static_cast<uint32_t>(rng.NextInt(0, 2)));
      txns.push_back(std::move(t));
    }
    const auto committed = proc.ExecuteBatch(txns);
    ASSERT_EQ(committed.size(), txns.size());
    all.insert(all.end(), committed.begin(), committed.end());
  }

  const Status verdict = VerifySerializable(sc.num_objects, all);
  ASSERT_TRUE(verdict.ok()) << verdict.ToString();
  EXPECT_EQ(proc.stats().committed, kBatches * kTxnsPerBatch);
  EXPECT_EQ(proc.stats().batches, kBatches);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesByContention, ExecStressTest,
    ::testing::Values(StressCase{UpdateScheme::kTwoPhaseLocking, 64, "TwoPhaseLockingLow"},
                      StressCase{UpdateScheme::kTwoPhaseLocking, 4, "TwoPhaseLockingHigh"},
                      StressCase{UpdateScheme::kOcc, 64, "OccLow"},
                      StressCase{UpdateScheme::kOcc, 4, "OccHigh"},
                      StressCase{UpdateScheme::kMvcc, 64, "MvccLow"},
                      StressCase{UpdateScheme::kMvcc, 4, "MvccHigh"}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace bcc
