// End-to-end test of the real-transport tier (label: net): spawns a
// bcc_serverd OS process and several bcc_client OS processes on 127.0.0.1,
// runs a full broadcast to completion over real UDP sockets, and checks
// that at loss 0 the daemon's final state digest is bit-identical to the
// in-process DES oracle's — and that every client independently reconstructed
// that same digest from the datagrams it received.
//
// Binary paths are injected by CMake (BCC_SERVERD_PATH / BCC_CLIENT_PATH).

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/datagram.h"
#include "net/socket.h"
#include "net/state_digest.h"
#include "obs/json.h"
#include "sim/broadcast_sim.h"

namespace bcc {
namespace {

constexpr uint32_t kObjects = 32;
constexpr uint64_t kCycles = 24;
constexpr uint32_t kClients = 4;
constexpr uint64_t kSeed = 42;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Extracts the first `"key":<u64>` occurrence; 0 when absent.
uint64_t ExtractU64(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) return 0;
  return std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
}

pid_t Spawn(const std::vector<std::string>& args, const std::string& log_path) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  // Child: route stdout/stderr to the log so a failure is diagnosable.
  FILE* log = std::freopen(log_path.c_str(), "w", stdout);
  if (log != nullptr) dup2(fileno(stdout), STDERR_FILENO);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  execv(argv[0], argv.data());
  _exit(127);
}

int WaitFor(pid_t pid) {
  int status = 0;
  waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
}

TEST(NetLoopbackTest, FourClientsReachBitIdenticalStateWithDesOracle) {
  const std::string dir = ::testing::TempDir();
  const std::string endpoint_file = dir + "/bcc_loopback.ep";
  const std::string server_json = dir + "/bcc_loopback_server.json";
  ::unlink(endpoint_file.c_str());

  const std::string common_flags[] = {
      "--objects=" + std::to_string(kObjects),
      "--object-kb=1",
      "--cycles=" + std::to_string(kCycles),
      "--seed=" + std::to_string(kSeed),
      "--max-wall-ms=60000",
  };

  std::vector<std::string> server_args = {
      BCC_SERVERD_PATH,
      "--listen=127.0.0.1:0",
      "--endpoint-file=" + endpoint_file,
      "--clients=" + std::to_string(kClients),
      "--json-out=" + server_json,
      // Pace the broadcast so no client's kernel receive buffer overruns
      // even when the OS deschedules it briefly (SO_RCVBUF is silently
      // capped by net.core.rmem_max): loss 0 must mean loss 0.
      "--pace=50",
  };
  for (const std::string& f : common_flags) server_args.push_back(f);
  const pid_t server_pid = Spawn(server_args, dir + "/bcc_loopback_server.log");
  ASSERT_GT(server_pid, 0);

  // Discover the daemon's ephemeral uplink port.
  std::string endpoint;
  for (int i = 0; i < 400 && endpoint.empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    endpoint = ReadFile(endpoint_file);
  }
  ASSERT_FALSE(endpoint.empty()) << "daemon never wrote its endpoint file";
  while (!endpoint.empty() && (endpoint.back() == '\n' || endpoint.back() == '\r')) {
    endpoint.pop_back();
  }

  std::vector<pid_t> client_pids;
  std::vector<std::string> client_jsons;
  for (uint32_t c = 0; c < kClients; ++c) {
    const std::string json = dir + "/bcc_loopback_client" + std::to_string(c) + ".json";
    client_jsons.push_back(json);
    std::vector<std::string> client_args = {
        BCC_CLIENT_PATH,
        "--connect=" + endpoint,
        "--client-id=" + std::to_string(c + 1),
        "--json-out=" + json,
    };
    for (const std::string& f : common_flags) client_args.push_back(f);
    client_pids.push_back(
        Spawn(client_args, dir + "/bcc_loopback_client" + std::to_string(c) + ".log"));
    ASSERT_GT(client_pids.back(), 0);
  }

  EXPECT_EQ(WaitFor(server_pid), 0) << ReadFile(dir + "/bcc_loopback_server.log");
  for (uint32_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(WaitFor(client_pids[c]), 0)
        << ReadFile(dir + "/bcc_loopback_client" + std::to_string(c) + ".log");
  }

  // In-process DES oracle: same seed, same geometry, loss 0. The server's
  // end state is a pure function of (seed, config), so the networked daemon
  // must land on exactly this snapshot.
  SimConfig sim;
  sim.num_objects = kObjects;
  sim.object_size_bits = 8 * 1024;
  sim.seed = kSeed;
  sim.num_clients = kClients;
  sim.stop_after_cycles = kCycles;
  sim.channel_broadcast = true;
  sim.use_wire_codec = true;
  sim.algorithm = Algorithm::kFMatrix;
  BroadcastSim oracle(sim);
  ASSERT_TRUE(oracle.Run().ok());
  const CycleSnapshot& snap = oracle.final_snapshot();
  ASSERT_EQ(snap.cycle, kCycles);
  uint64_t oracle_digest = DigestValues(snap.values);
  oracle_digest =
      DigestMatrixResidues(snap.f_matrix, CycleStampCodec(sim.timestamp_bits), oracle_digest);

  const std::string server_report = ReadFile(server_json);
  ASSERT_FALSE(server_report.empty());
  EXPECT_EQ(ExtractU64(server_report, "digest"), oracle_digest)
      << "daemon diverged from the DES oracle: " << server_report;
  EXPECT_EQ(server_report.find("\"digest_match\":false"), std::string::npos) << server_report;
  EXPECT_GT(ExtractU64(server_report, "server_commits"), 0u);

  for (const std::string& json_path : client_jsons) {
    const std::string report = ReadFile(json_path);
    ASSERT_FALSE(report.empty()) << json_path;
    EXPECT_EQ(ExtractU64(report, "digest"), oracle_digest)
        << json_path << " diverged: " << report;
    EXPECT_EQ(ExtractU64(report, "cycles_ingested"), kCycles) << report;
    EXPECT_GT(ExtractU64(report, "commits"), 0u) << report;
    // Loss 0 on loopback with a large SO_RCVBUF: nothing may be dropped.
    EXPECT_EQ(ExtractU64(report, "frames_dropped"), 0u) << report;
  }
}

/// Splits a file into newline-terminated lines (the JSONL contract).
std::vector<std::string> ReadLines(const std::string& path) {
  const std::string content = ReadFile(path);
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < content.size()) {
    const size_t nl = content.find('\n', start);
    if (nl == std::string::npos) break;
    lines.push_back(content.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// Polls a live node with METRICS_REQ until a token-matched METRICS reply
/// arrives or ~5 s elapse; returns the reply's JSON payload ("" on timeout).
std::string PollMetrics(const std::string& endpoint, uint32_t token) {
  UdpSocket sock;
  if (!sock.Open().ok() || !sock.Bind(Endpoint{"0.0.0.0", 0}).ok()) return "";
  const StatusOr<Endpoint> target = ParseEndpoint(endpoint);
  if (!target.ok()) return "";
  const StatusOr<SockAddr> addr = ResolveEndpoint(*target);
  if (!addr.ok()) return "";
  MetricsReqMsg req;
  req.token = token;
  const std::vector<uint8_t> wire = EncodeMetricsReq(req);
  for (int attempt = 0; attempt < 250; ++attempt) {
    if (attempt % 10 == 0 && !sock.SendTo(wire, *addr).ok()) return "";
    const StatusOr<std::vector<InDatagram>> batch = sock.RecvBatch(8, 65536);
    if (batch.ok()) {
      for (const InDatagram& d : *batch) {
        const StatusOr<MetricsMsg> reply = DecodeMetrics(d.bytes);
        if (reply.ok() && reply->token == token && !reply->truncated) return reply->json;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return "";
}

// Same loopback run with the full telemetry stack on — JSONL snapshot
// loggers, Perfetto traces, the slow-cycle watchdog, the decision log, and a
// mid-run METRICS_REQ poll — and the digest must STILL be bit-identical to
// the DES oracle: telemetry must have zero observer effect on the protocol.
TEST(NetLoopbackTest, TelemetryRunStaysBitIdenticalAndAnswersMetricsReq) {
  const std::string dir = ::testing::TempDir();
  const std::string endpoint_file = dir + "/bcc_telemetry.ep";
  const std::string server_json = dir + "/bcc_telemetry_server.json";
  const std::string server_metrics = dir + "/bcc_telemetry_server.jsonl";
  const std::string server_trace = dir + "/bcc_telemetry_server.trace.json";
  const std::string decisions_json = dir + "/bcc_telemetry_decisions.json";
  ::unlink(endpoint_file.c_str());

  const std::string common_flags[] = {
      "--objects=" + std::to_string(kObjects),
      "--object-kb=1",
      "--cycles=" + std::to_string(kCycles),
      "--seed=" + std::to_string(kSeed),
      "--max-wall-ms=60000",
      "--metrics",
      "--metrics-interval-ms=100",
  };

  std::vector<std::string> server_args = {
      BCC_SERVERD_PATH,
      "--listen=127.0.0.1:0",
      "--endpoint-file=" + endpoint_file,
      "--clients=" + std::to_string(kClients),
      "--json-out=" + server_json,
      "--metrics-out=" + server_metrics,
      "--trace-out=" + server_trace,
      "--decisions-out=" + decisions_json,
      // An absurdly generous budget: the watchdog must stay silent on a
      // healthy run (its firing path is covered by unit tests).
      "--slow-cycle-factor=100",
      "--pace=50",
  };
  for (const std::string& f : common_flags) server_args.push_back(f);
  const pid_t server_pid = Spawn(server_args, dir + "/bcc_telemetry_server.log");
  ASSERT_GT(server_pid, 0);

  std::string endpoint;
  for (int i = 0; i < 400 && endpoint.empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    endpoint = ReadFile(endpoint_file);
  }
  ASSERT_FALSE(endpoint.empty()) << "daemon never wrote its endpoint file";
  while (!endpoint.empty() && (endpoint.back() == '\n' || endpoint.back() == '\r')) {
    endpoint.pop_back();
  }

  std::vector<pid_t> client_pids;
  std::vector<std::string> client_jsons;
  std::vector<std::string> client_metrics;
  std::vector<std::string> client_traces;
  for (uint32_t c = 0; c < kClients; ++c) {
    const std::string tag = dir + "/bcc_telemetry_client" + std::to_string(c);
    client_jsons.push_back(tag + ".json");
    client_metrics.push_back(tag + ".jsonl");
    client_traces.push_back(tag + ".trace.json");
    std::vector<std::string> client_args = {
        BCC_CLIENT_PATH,
        "--connect=" + endpoint,
        "--client-id=" + std::to_string(c + 1),
        "--json-out=" + client_jsons.back(),
        "--metrics-out=" + client_metrics.back(),
        "--trace-out=" + client_traces.back(),
    };
    for (const std::string& f : common_flags) client_args.push_back(f);
    client_pids.push_back(Spawn(client_args, tag + ".log"));
    ASSERT_GT(client_pids.back(), 0);
  }

  // Live introspection MID-RUN: the daemon must answer METRICS_REQ on its
  // uplink port while the broadcast is in flight, and the payload must be
  // strict JSON naming the node.
  const std::string live = PollMetrics(endpoint, /*token=*/0xBCC9);
  ASSERT_FALSE(live.empty()) << "daemon never answered METRICS_REQ mid-run";
  EXPECT_TRUE(ValidateJson(live).ok()) << live;
  EXPECT_NE(live.find("\"node\":\"server\""), std::string::npos) << live;
  EXPECT_NE(live.find("\"enabled\":true"), std::string::npos) << live;
  EXPECT_NE(live.find("\"metrics\":"), std::string::npos) << live;

  EXPECT_EQ(WaitFor(server_pid), 0) << ReadFile(dir + "/bcc_telemetry_server.log");
  for (uint32_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(WaitFor(client_pids[c]), 0)
        << ReadFile(dir + "/bcc_telemetry_client" + std::to_string(c) + ".log");
  }

  // Zero observer effect, system level: digests bit-identical to the oracle.
  SimConfig sim;
  sim.num_objects = kObjects;
  sim.object_size_bits = 8 * 1024;
  sim.seed = kSeed;
  sim.num_clients = kClients;
  sim.stop_after_cycles = kCycles;
  sim.channel_broadcast = true;
  sim.use_wire_codec = true;
  sim.algorithm = Algorithm::kFMatrix;
  BroadcastSim oracle(sim);
  ASSERT_TRUE(oracle.Run().ok());
  const CycleSnapshot& snap = oracle.final_snapshot();
  uint64_t oracle_digest = DigestValues(snap.values);
  oracle_digest =
      DigestMatrixResidues(snap.f_matrix, CycleStampCodec(sim.timestamp_bits), oracle_digest);

  const std::string server_report = ReadFile(server_json);
  ASSERT_FALSE(server_report.empty());
  EXPECT_EQ(ExtractU64(server_report, "digest"), oracle_digest)
      << "telemetry perturbed the daemon: " << server_report;
  // The final report splices the metrics snapshot and stays strict JSON.
  EXPECT_TRUE(ValidateJson(server_report).ok());
  EXPECT_NE(server_report.find("\"metrics\":"), std::string::npos) << server_report;
  EXPECT_EQ(ExtractU64(server_report, "slow_cycles"), 0u) << server_report;
  for (uint32_t c = 0; c < kClients; ++c) {
    const std::string report = ReadFile(client_jsons[c]);
    ASSERT_FALSE(report.empty()) << client_jsons[c];
    EXPECT_EQ(ExtractU64(report, "digest"), oracle_digest) << report;
    EXPECT_TRUE(ValidateJson(report).ok());
    EXPECT_NE(report.find("\"metrics\":"), std::string::npos) << report;
  }

  // Snapshot files are strict JSON lines carrying the node identity.
  const std::vector<std::string> server_lines = ReadLines(server_metrics);
  ASSERT_FALSE(server_lines.empty()) << "daemon wrote no metrics snapshots";
  for (const std::string& line : server_lines) {
    ASSERT_TRUE(ValidateJson(line).ok()) << line;
    EXPECT_NE(line.find("\"node\":\"server\""), std::string::npos) << line;
  }
  for (uint32_t c = 0; c < kClients; ++c) {
    const std::vector<std::string> lines = ReadLines(client_metrics[c]);
    ASSERT_FALSE(lines.empty()) << client_metrics[c];
    for (const std::string& line : lines) {
      ASSERT_TRUE(ValidateJson(line).ok()) << line;
      EXPECT_NE(line.find("\"node\":\"client"), std::string::npos) << line;
    }
  }

  // Perfetto traces: valid Chrome trace_event JSON with the expected tracks.
  const std::string server_trace_json = ReadFile(server_trace);
  ASSERT_FALSE(server_trace_json.empty());
  EXPECT_TRUE(ValidateJson(server_trace_json).ok());
  EXPECT_NE(server_trace_json.find("\"server\""), std::string::npos);
  EXPECT_NE(server_trace_json.find("\"client0\""), std::string::npos);
  for (uint32_t c = 0; c < kClients; ++c) {
    const std::string trace = ReadFile(client_traces[c]);
    ASSERT_FALSE(trace.empty()) << client_traces[c];
    EXPECT_TRUE(ValidateJson(trace).ok()) << client_traces[c];
  }

  // The decision log exports as one strict-JSON document.
  const std::string decisions = ReadFile(decisions_json);
  ASSERT_FALSE(decisions.empty());
  EXPECT_TRUE(ValidateJson(decisions).ok());
  EXPECT_NE(decisions.find("\"server_commits\""), std::string::npos);
  EXPECT_NE(decisions.find("\"uplinks\""), std::string::npos);
}

}  // namespace
}  // namespace bcc
