// End-to-end test of the real-transport tier (label: net): spawns a
// bcc_serverd OS process and several bcc_client OS processes on 127.0.0.1,
// runs a full broadcast to completion over real UDP sockets, and checks
// that at loss 0 the daemon's final state digest is bit-identical to the
// in-process DES oracle's — and that every client independently reconstructed
// that same digest from the datagrams it received.
//
// Binary paths are injected by CMake (BCC_SERVERD_PATH / BCC_CLIENT_PATH).

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/state_digest.h"
#include "sim/broadcast_sim.h"

namespace bcc {
namespace {

constexpr uint32_t kObjects = 32;
constexpr uint64_t kCycles = 24;
constexpr uint32_t kClients = 4;
constexpr uint64_t kSeed = 42;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Extracts the first `"key":<u64>` occurrence; 0 when absent.
uint64_t ExtractU64(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) return 0;
  return std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
}

pid_t Spawn(const std::vector<std::string>& args, const std::string& log_path) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  // Child: route stdout/stderr to the log so a failure is diagnosable.
  FILE* log = std::freopen(log_path.c_str(), "w", stdout);
  if (log != nullptr) dup2(fileno(stdout), STDERR_FILENO);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  execv(argv[0], argv.data());
  _exit(127);
}

int WaitFor(pid_t pid) {
  int status = 0;
  waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
}

TEST(NetLoopbackTest, FourClientsReachBitIdenticalStateWithDesOracle) {
  const std::string dir = ::testing::TempDir();
  const std::string endpoint_file = dir + "/bcc_loopback.ep";
  const std::string server_json = dir + "/bcc_loopback_server.json";
  ::unlink(endpoint_file.c_str());

  const std::string common_flags[] = {
      "--objects=" + std::to_string(kObjects),
      "--object-kb=1",
      "--cycles=" + std::to_string(kCycles),
      "--seed=" + std::to_string(kSeed),
      "--max-wall-ms=60000",
  };

  std::vector<std::string> server_args = {
      BCC_SERVERD_PATH,
      "--listen=127.0.0.1:0",
      "--endpoint-file=" + endpoint_file,
      "--clients=" + std::to_string(kClients),
      "--json-out=" + server_json,
      // Pace the broadcast so no client's kernel receive buffer overruns
      // even when the OS deschedules it briefly (SO_RCVBUF is silently
      // capped by net.core.rmem_max): loss 0 must mean loss 0.
      "--pace=50",
  };
  for (const std::string& f : common_flags) server_args.push_back(f);
  const pid_t server_pid = Spawn(server_args, dir + "/bcc_loopback_server.log");
  ASSERT_GT(server_pid, 0);

  // Discover the daemon's ephemeral uplink port.
  std::string endpoint;
  for (int i = 0; i < 400 && endpoint.empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    endpoint = ReadFile(endpoint_file);
  }
  ASSERT_FALSE(endpoint.empty()) << "daemon never wrote its endpoint file";
  while (!endpoint.empty() && (endpoint.back() == '\n' || endpoint.back() == '\r')) {
    endpoint.pop_back();
  }

  std::vector<pid_t> client_pids;
  std::vector<std::string> client_jsons;
  for (uint32_t c = 0; c < kClients; ++c) {
    const std::string json = dir + "/bcc_loopback_client" + std::to_string(c) + ".json";
    client_jsons.push_back(json);
    std::vector<std::string> client_args = {
        BCC_CLIENT_PATH,
        "--connect=" + endpoint,
        "--client-id=" + std::to_string(c + 1),
        "--json-out=" + json,
    };
    for (const std::string& f : common_flags) client_args.push_back(f);
    client_pids.push_back(
        Spawn(client_args, dir + "/bcc_loopback_client" + std::to_string(c) + ".log"));
    ASSERT_GT(client_pids.back(), 0);
  }

  EXPECT_EQ(WaitFor(server_pid), 0) << ReadFile(dir + "/bcc_loopback_server.log");
  for (uint32_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(WaitFor(client_pids[c]), 0)
        << ReadFile(dir + "/bcc_loopback_client" + std::to_string(c) + ".log");
  }

  // In-process DES oracle: same seed, same geometry, loss 0. The server's
  // end state is a pure function of (seed, config), so the networked daemon
  // must land on exactly this snapshot.
  SimConfig sim;
  sim.num_objects = kObjects;
  sim.object_size_bits = 8 * 1024;
  sim.seed = kSeed;
  sim.num_clients = kClients;
  sim.stop_after_cycles = kCycles;
  sim.channel_broadcast = true;
  sim.use_wire_codec = true;
  sim.algorithm = Algorithm::kFMatrix;
  BroadcastSim oracle(sim);
  ASSERT_TRUE(oracle.Run().ok());
  const CycleSnapshot& snap = oracle.final_snapshot();
  ASSERT_EQ(snap.cycle, kCycles);
  uint64_t oracle_digest = DigestValues(snap.values);
  oracle_digest =
      DigestMatrixResidues(snap.f_matrix, CycleStampCodec(sim.timestamp_bits), oracle_digest);

  const std::string server_report = ReadFile(server_json);
  ASSERT_FALSE(server_report.empty());
  EXPECT_EQ(ExtractU64(server_report, "digest"), oracle_digest)
      << "daemon diverged from the DES oracle: " << server_report;
  EXPECT_EQ(server_report.find("\"digest_match\":false"), std::string::npos) << server_report;
  EXPECT_GT(ExtractU64(server_report, "server_commits"), 0u);

  for (const std::string& json_path : client_jsons) {
    const std::string report = ReadFile(json_path);
    ASSERT_FALSE(report.empty()) << json_path;
    EXPECT_EQ(ExtractU64(report, "digest"), oracle_digest)
        << json_path << " diverged: " << report;
    EXPECT_EQ(ExtractU64(report, "cycles_ingested"), kCycles) << report;
    EXPECT_GT(ExtractU64(report, "commits"), 0u) << report;
    // Loss 0 on loopback with a large SO_RCVBUF: nothing may be dropped.
    EXPECT_EQ(ExtractU64(report, "frames_dropped"), 0u) << report;
  }
}

}  // namespace
}  // namespace bcc
