#include "server/schedule.h"

#include <gtest/gtest.h>

#include "server/broadcast_server.h"

namespace bcc {
namespace {

TEST(BroadcastScheduleTest, FlatIsIdentity) {
  const BroadcastSchedule s = BroadcastSchedule::Flat(4);
  EXPECT_EQ(s.num_slots(), 4u);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(s.SlotObject(i), i);
    EXPECT_EQ(s.SlotsOf(i), (std::vector<uint32_t>{i}));
  }
}

TEST(BroadcastScheduleTest, FrequenciesRespected) {
  auto s = BroadcastSchedule::FromFrequencies({3, 1, 1});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_slots(), 5u);
  EXPECT_EQ(s->SlotsOf(0).size(), 3u);
  EXPECT_EQ(s->SlotsOf(1).size(), 1u);
  EXPECT_EQ(s->SlotsOf(2).size(), 1u);
}

TEST(BroadcastScheduleTest, HotAppearancesAreSpread) {
  auto s = BroadcastSchedule::FromFrequencies({4, 1, 1, 1, 1});
  ASSERT_TRUE(s.ok());
  // Object 0 appears 4 times in 8 slots; gaps between consecutive
  // appearances must be at most 3 slots (evenly spread).
  const auto& slots = s->SlotsOf(0);
  ASSERT_EQ(slots.size(), 4u);
  for (size_t i = 1; i < slots.size(); ++i) {
    EXPECT_LE(slots[i] - slots[i - 1], 3u);
  }
}

TEST(BroadcastScheduleTest, ZeroFrequencyRejected) {
  EXPECT_FALSE(BroadcastSchedule::FromFrequencies({1, 0, 1}).ok());
  EXPECT_FALSE(BroadcastSchedule::FromFrequencies({}).ok());
}

TEST(BroadcastScheduleTest, NextSlotOfFindsFollowingAppearance) {
  auto s = BroadcastSchedule::FromFrequencies({2, 1});
  ASSERT_TRUE(s.ok());
  const auto& slots = s->SlotsOf(0);
  ASSERT_EQ(slots.size(), 2u);
  EXPECT_EQ(s->NextSlotOf(0, 0), slots[0]);
  EXPECT_EQ(s->NextSlotOf(0, slots[0] + 1), slots[1]);
  EXPECT_EQ(s->NextSlotOf(0, slots[1] + 1), -1);
}

TEST(BroadcastScheduleTest, AllFrequenciesEqualBehavesLikeFlatCoverage) {
  auto s = BroadcastSchedule::FromFrequencies({2, 2, 2});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_slots(), 6u);
  for (uint32_t ob = 0; ob < 3; ++ob) EXPECT_EQ(s->SlotsOf(ob).size(), 2u);
}

TEST(MultiSpeedServerTest, NextSlotEndWithinCycle) {
  ServerTxnManager mgr(3);
  BroadcastServer server(3, ComputeGeometry(Algorithm::kRMatrix, 3, 100, 8));
  auto sched = BroadcastSchedule::FromFrequencies({2, 1, 1});
  ASSERT_TRUE(sched.ok());
  server.SetSchedule(std::move(*sched));
  server.BeginCycle(1, 0, mgr);
  const SimTime slot = server.geometry().slot_bits;
  EXPECT_EQ(server.CycleLengthBits(), 4 * slot);
  // Object 0 appears twice; asking after its first slot ends must yield the
  // second appearance, still within this cycle.
  const auto first = server.NextSlotEnd(0, 0);
  ASSERT_TRUE(first.has_value());
  const auto second = server.NextSlotEnd(0, *first + 1);
  ASSERT_TRUE(second.has_value());
  EXPECT_GT(*second, *first);
  EXPECT_LE(*second, server.CycleEndTime());
  // After the second appearance: nothing left this cycle.
  EXPECT_FALSE(server.NextSlotEnd(0, *second + 1).has_value());
}

TEST(MultiSpeedServerTest, SlotEndExactlyAtRequestTimeCounts) {
  ServerTxnManager mgr(2);
  BroadcastServer server(2, ComputeGeometry(Algorithm::kRMatrix, 2, 100, 8));
  server.BeginCycle(1, 0, mgr);
  const SimTime end0 = server.ObjectAvailableTime(0);
  EXPECT_EQ(server.NextSlotEnd(0, end0), end0);
  EXPECT_FALSE(server.NextSlotEnd(0, end0 + 1).has_value());
}

}  // namespace
}  // namespace bcc
