// Engine-level observability tests: the zero-observer-effect contract
// (tracing never changes a decision), abort-cause attribution invariants,
// cross-engine breakdown identity, and end-to-end trace export validity.

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "obs/json.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "sim/broadcast_sim.h"
#include "sim/concurrent_sim.h"

namespace bcc {
namespace {

// Contended single-client configuration: frequent server commits over a
// small database force read-condition aborts.
SimConfig ContendedConfig(Algorithm a, uint64_t seed = 42) {
  SimConfig c;
  c.algorithm = a;
  c.num_objects = 12;
  c.object_size_bits = 256;
  c.client_txn_length = 4;
  c.server_txn_length = 4;
  c.server_txn_interval = 6000;
  c.mean_inter_op_delay = 2000;
  c.mean_inter_txn_delay = 4000;
  c.num_client_txns = 80;
  c.warmup_txns = 20;
  c.seed = seed;
  return c;
}

// The concurrent engine's cross-check shape (multi-client, cycle cutoff).
SimConfig EpochConfig(uint64_t seed) {
  SimConfig config;
  config.algorithm = Algorithm::kFMatrix;
  config.num_objects = 16;
  config.object_size_bits = 256;
  config.client_txn_length = 3;
  config.server_txn_length = 4;
  config.server_txn_interval = 1500;
  config.mean_inter_op_delay = 512;
  config.mean_inter_txn_delay = 1024;
  config.num_clients = 4;
  config.seed = seed;
  config.stop_after_cycles = 40;
  config.num_client_txns = 100000;
  config.warmup_txns = 1;
  return config;
}

TEST(ObsSimTest, TracingHasZeroObserverEffect) {
  for (Algorithm a : kAllAlgorithms) {
    SimConfig config = ContendedConfig(a);
    config.record_decisions = true;

    BroadcastSim plain(config);
    const auto plain_summary = plain.Run();
    ASSERT_TRUE(plain_summary.ok()) << plain_summary.status().ToString();

    Tracer tracer(/*capacity_per_track=*/256);
    BroadcastSim traced(config);
    traced.set_tracer(&tracer);
    const auto traced_summary = traced.Run();
    ASSERT_TRUE(traced_summary.ok()) << traced_summary.status().ToString();

    // Identical decision streams and identical metrics: tracing is invisible.
    EXPECT_EQ(plain.decisions(), traced.decisions()) << AlgorithmName(a);
    EXPECT_EQ(plain_summary->sim_end_time, traced_summary->sim_end_time);
    EXPECT_EQ(plain_summary->total_restarts, traced_summary->total_restarts);
    EXPECT_EQ(plain_summary->mean_response_time, traced_summary->mean_response_time);
    EXPECT_TRUE(plain_summary->abort_causes == traced_summary->abort_causes)
        << AlgorithmName(a) << ": " << plain_summary->abort_causes.ToString() << " vs "
        << traced_summary->abort_causes.ToString();
    EXPECT_GT(tracer.TotalRecorded(), 0u);
  }
}

TEST(ObsSimTest, EveryAbortIsAttributed) {
  // Single client: the run ends exactly when its last transaction completes,
  // so the per-cause tally must account for every recorded restart.
  SimConfig config = ContendedConfig(Algorithm::kFMatrix);
  config.record_decisions = true;
  BroadcastSim sim(config);
  const auto summary = sim.Run();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();

  uint64_t restarts = 0;
  for (const auto& log : sim.decisions()) {
    for (const TxnDecision& d : log) restarts += d.restarts;
  }
  EXPECT_GT(restarts, 0u) << "configuration not contended enough to abort";
  EXPECT_EQ(summary->abort_causes.TotalAborts(), restarts);
  // A lossless, full-matrix, read-only run can only abort on control checks.
  EXPECT_EQ(summary->abort_causes.Count(AbortCause::kControlConflict),
            summary->abort_causes.TotalAborts());
  EXPECT_EQ(summary->abort_causes.Count(AbortCause::kCensored), summary->censored_txns);
}

TEST(ObsSimTest, DatacycleAbortsAttributeToMcConflict) {
  SimConfig config = ContendedConfig(Algorithm::kDatacycle);
  const auto summary = RunSimulation(config);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  ASSERT_GT(summary->abort_causes.TotalAborts(), 0u);
  EXPECT_EQ(summary->abort_causes.Count(AbortCause::kMcConflict),
            summary->abort_causes.TotalAborts());
  EXPECT_EQ(summary->abort_causes.Count(AbortCause::kControlConflict), 0u);
}

TEST(ObsSimTest, ChannelLossAbortsAttributedToLoss) {
  SimConfig config = ContendedConfig(Algorithm::kFMatrix, 7);
  config.channel_broadcast = true;
  config.channel_loss_rate = 0.05;
  const auto summary = RunSimulation(config);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  // The kChannelLoss tally and the channel's loss-attributed abort counter
  // are two views of the same classification.
  EXPECT_EQ(summary->abort_causes.Count(AbortCause::kChannelLoss),
            summary->channel.loss_attributed_aborts);
}

TEST(ObsSimTest, AbortBreakdownSurvivesSummaryToString) {
  SimConfig config = ContendedConfig(Algorithm::kFMatrix);
  const auto summary = RunSimulation(config);
  ASSERT_TRUE(summary.ok());
  ASSERT_GT(summary->abort_causes.TotalAborts(), 0u);
  EXPECT_NE(summary->ToString().find("aborts("), std::string::npos);
}

TEST(ObsSimTest, MetricsJsonIsValidAndComplete) {
  SimConfig config = ContendedConfig(Algorithm::kFMatrix);
  const auto summary = RunSimulation(config);
  ASSERT_TRUE(summary.ok());
  const std::string json = summary->ToJson();
  EXPECT_EQ(ValidateJson(json), Status::OK()) << json;
  EXPECT_NE(json.find("\"abort_causes\""), std::string::npos);
  EXPECT_NE(json.find("\"control_conflict\""), std::string::npos);
  EXPECT_NE(json.find("\"channel\""), std::string::npos);
  EXPECT_NE(json.find("\"mean_response_time\""), std::string::npos);
}

TEST(ObsSimTest, TraceExportFromRunIsValidChromeTrace) {
  SimConfig config = ContendedConfig(Algorithm::kFMatrix);
  Tracer tracer(/*capacity_per_track=*/512);
  BroadcastSim sim(config);
  sim.set_tracer(&tracer);
  ASSERT_TRUE(sim.Run().ok());

  ASSERT_EQ(tracer.num_tracks(), 2u);  // server + one client
  EXPECT_EQ(tracer.track_name(0), "server");
  EXPECT_EQ(tracer.track_name(1), "client0");

  const std::string json = ExportChromeTrace(tracer);
  EXPECT_EQ(ValidateJson(json), Status::OK());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\""), std::string::npos);  // cycle slices present
  EXPECT_NE(json.find("\"abort\""), std::string::npos);
}

TEST(ObsSimTest, CrossEngineAbortBreakdownsAreIdentical) {
  for (const uint64_t seed : {7ull, 1234ull}) {
    SimConfig config = EpochConfig(seed);
    config.record_decisions = true;
    // Cycle cutoff only (the cross-check's shape): make the count unreachable.
    config.num_client_txns = std::numeric_limits<uint32_t>::max();

    BroadcastSim sequential(config);
    const auto seq = sequential.Run();
    ASSERT_TRUE(seq.ok()) << seq.status().ToString();

    ConcurrentSim concurrent(config);
    const auto conc = concurrent.Run();
    ASSERT_TRUE(conc.ok()) << conc.status().ToString();

    EXPECT_GT(seq->abort_causes.TotalAborts(), 0u) << "seed " << seed;
    EXPECT_TRUE(seq->abort_causes == conc->abort_causes)
        << "seed " << seed << ": " << seq->abort_causes.ToString() << " vs "
        << conc->abort_causes.ToString();
  }
}

// Named ConcurrentSim* so the TSan CI job (ctest -R 'ConcurrentSim') also
// exercises the tracing paths under the race detector.
TEST(ConcurrentSimTraceTest, TracingIsRaceFreeAndZeroEffect) {
  SimConfig config = EpochConfig(11);
  config.record_decisions = true;

  ConcurrentSim plain(config);
  const auto plain_summary = plain.Run();
  ASSERT_TRUE(plain_summary.ok()) << plain_summary.status().ToString();

  Tracer tracer(/*capacity_per_track=*/256);
  ConcurrentSim traced(config);
  traced.set_tracer(&tracer);
  const auto traced_summary = traced.Run();
  ASSERT_TRUE(traced_summary.ok()) << traced_summary.status().ToString();

  EXPECT_EQ(plain.decisions(), traced.decisions());
  EXPECT_EQ(plain_summary->completed_txns, traced_summary->completed_txns);
  EXPECT_EQ(plain_summary->total_restarts, traced_summary->total_restarts);
  EXPECT_TRUE(plain_summary->abort_causes == traced_summary->abort_causes);
  EXPECT_EQ(tracer.num_tracks(), 1u + config.num_clients);
  EXPECT_GT(tracer.TotalRecorded(), 0u);
  EXPECT_EQ(ValidateJson(ExportChromeTrace(tracer)), Status::OK());
}

TEST(ConcurrentSimTraceTest, CrossCheckStillHoldsWithContention) {
  SimConfig config = EpochConfig(3);
  config.server_txn_interval = 800;  // heavier write traffic, more aborts
  EXPECT_EQ(CrossCheckEngines(config), Status::OK());
}

}  // namespace
}  // namespace bcc
