#include "server/txn_manager.h"

#include <gtest/gtest.h>

#include "cc/conflict_serializability.h"
#include "matrix/f_matrix.h"

namespace bcc {
namespace {

ServerTxn MakeTxn(TxnId id, std::vector<ObjectId> reads, std::vector<ObjectId> writes) {
  return ServerTxn{id, std::move(reads), std::move(writes)};
}

TEST(ServerTxnManagerTest, CommitInstallsValuesWithCycle) {
  ServerTxnManager mgr(3);
  mgr.ExecuteAndCommit(MakeTxn(1, {}, {0, 2}), /*cycle=*/5);
  EXPECT_EQ(mgr.store().Committed(0).writer, 1u);
  EXPECT_EQ(mgr.store().Committed(0).cycle, 5u);
  EXPECT_EQ(mgr.store().Committed(1).writer, kInitTxn);
  EXPECT_EQ(mgr.num_committed(), 1u);
  EXPECT_EQ(mgr.commit_cycles().at(1), 5u);
}

TEST(ServerTxnManagerTest, ReadsObserveCommittedState) {
  ServerTxnManager mgr(2);
  mgr.ExecuteAndCommit(MakeTxn(1, {}, {0}), 1);
  const auto values = mgr.ExecuteAndCommit(MakeTxn(2, {0, 1}, {1}), 2);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0].writer, 1u);         // read t1's write
  EXPECT_EQ(values[1].writer, kInitTxn);   // ob1 untouched until now
}

TEST(ServerTxnManagerTest, MatricesTrackCommits) {
  ServerTxnManager mgr(3);
  mgr.ExecuteAndCommit(MakeTxn(1, {}, {0}), 1);
  mgr.ExecuteAndCommit(MakeTxn(2, {0}, {1}), 3);
  EXPECT_EQ(mgr.mc_vector().At(0), 1u);
  EXPECT_EQ(mgr.mc_vector().At(1), 3u);
  EXPECT_EQ(mgr.f_matrix().At(0, 1), 1u);  // ob1 depends on ob0's writer
  EXPECT_EQ(mgr.f_matrix().At(1, 1), 3u);
}

TEST(ServerTxnManagerTest, OptionsDisableStructures) {
  TxnManagerOptions options;
  options.maintain_f_matrix = false;
  ServerTxnManager mgr(3, options);
  mgr.ExecuteAndCommit(MakeTxn(1, {}, {0}), 1);
  EXPECT_EQ(mgr.f_matrix().num_objects(), 0u);
  EXPECT_EQ(mgr.mc_vector().At(0), 1u);
}

TEST(ServerTxnManagerTest, RecordedHistoryIsSerialAndSerializable) {
  TxnManagerOptions options;
  options.record_history = true;
  ServerTxnManager mgr(3, options);
  mgr.ExecuteAndCommit(MakeTxn(1, {}, {0}), 1);
  mgr.ExecuteAndCommit(MakeTxn(2, {0}, {1}), 2);
  mgr.ExecuteAndCommit(MakeTxn(3, {1}, {2}), 2);
  const History& h = mgr.recorded_history();
  EXPECT_EQ(h.ToString(),
            "w1(ob0) c1 r2(ob0) w2(ob1) c2 r3(ob1) w3(ob2) c3");
  EXPECT_TRUE(IsConflictSerializable(h));
}

TEST(ServerTxnManagerTest, HistoryDisabledByDefault) {
  ServerTxnManager mgr(2);
  mgr.ExecuteAndCommit(MakeTxn(1, {}, {0}), 1);
  EXPECT_TRUE(mgr.recorded_history().empty());
}

TEST(ServerTxnManagerTest, IncrementalMatrixMatchesDefinitionOnRecordedHistory) {
  TxnManagerOptions options;
  options.record_history = true;
  ServerTxnManager mgr(4, options);
  mgr.ExecuteAndCommit(MakeTxn(1, {}, {0, 1}), 1);
  mgr.ExecuteAndCommit(MakeTxn(2, {0}, {2}), 2);
  mgr.ExecuteAndCommit(MakeTxn(3, {2, 1}, {3, 0}), 4);
  const FMatrix from_def =
      FMatrixFromDefinition(mgr.recorded_history(), mgr.commit_cycles(), 4);
  EXPECT_TRUE(mgr.f_matrix() == from_def);
}

}  // namespace
}  // namespace bcc
