#include "graph/polygraph.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace bcc {
namespace {

TEST(PolygraphTest, NoBipathsReducesToDigraph) {
  Polygraph p;
  p.AddArc(1, 2);
  p.AddArc(2, 3);
  EXPECT_TRUE(p.IsAcyclic());
  p.AddArc(3, 1);
  EXPECT_FALSE(p.IsAcyclic());
}

TEST(PolygraphTest, BipathSatisfiableByEitherArm) {
  // Base: 3 -> 1 (so the bipath shape ((v,u),(u,w)) with (w,v) in A holds).
  Polygraph p;
  p.AddArc(3, 1);
  p.AddBipath({2, 4}, {4, 3});  // choose 2->4 or 4->3
  EXPECT_TRUE(p.IsAcyclic());
}

TEST(PolygraphTest, BipathWithOneArmBlockedUsesOther) {
  Polygraph p;
  p.AddArc(1, 2);   // base
  p.AddArc(2, 3);
  p.AddBipath({3, 1}, {1, 4});  // 3->1 closes a cycle; must pick 1->4
  EXPECT_TRUE(p.IsAcyclic());
  const auto order = p.FindAcyclicOrder();
  ASSERT_TRUE(order.has_value());
  auto pos = [&](uint32_t k) {
    return std::find(order->begin(), order->end(), k) - order->begin();
  };
  EXPECT_LT(pos(1), pos(2));
  EXPECT_LT(pos(2), pos(3));
}

TEST(PolygraphTest, UnsatisfiableWhenBothArmsCycle) {
  Polygraph p;
  p.AddArc(1, 2);
  p.AddArc(2, 3);
  p.AddArc(3, 4);
  // Both arms close cycles: 3->1 and 4->2.
  p.AddBipath({3, 1}, {4, 2});
  EXPECT_FALSE(p.IsAcyclic());
  EXPECT_FALSE(p.FindAcyclicOrder().has_value());
}

TEST(PolygraphTest, InteractingBipathsRequireBacktracking) {
  // Bipath 1 greedily satisfied one way can block bipath 2; the search must
  // backtrack and pick the other arm.
  Polygraph p;
  p.AddArc(10, 11);
  // Bipath A: pick 11->12 or 12->10.
  p.AddBipath({11, 12}, {12, 10});
  // Bipath B: pick 12->11 (conflicts with 11->12) or 13->14.
  p.AddBipath({12, 11}, {13, 14});
  EXPECT_TRUE(p.IsAcyclic());
}

TEST(PolygraphTest, BipathSatisfiedByBaseArcIsSkipped) {
  Polygraph p;
  p.AddArc(1, 2);
  p.AddBipath({1, 2}, {2, 3});  // first arm already in A: no choice needed
  EXPECT_TRUE(p.IsAcyclic());
}

TEST(PolygraphTest, CyclicBaseIsCyclicRegardlessOfBipaths) {
  Polygraph p;
  p.AddArc(1, 2);
  p.AddArc(2, 1);
  p.AddBipath({3, 4}, {4, 5});
  EXPECT_FALSE(p.IsAcyclic());
}

TEST(PolygraphTest, WitnessOrderSatisfiesEveryBipath) {
  Polygraph p;
  p.AddArc(1, 2);
  p.AddArc(2, 3);
  p.AddBipath({4, 1}, {3, 4});
  p.AddBipath({4, 2}, {2, 4});
  const auto order = p.FindAcyclicOrder();
  ASSERT_TRUE(order.has_value());
  auto pos = [&](uint32_t k) {
    return std::find(order->begin(), order->end(), k) - order->begin();
  };
  // Every bipath: at least one arm respected by the order.
  EXPECT_TRUE(pos(4) < pos(1) || pos(3) < pos(4));
  EXPECT_TRUE(pos(4) < pos(2) || pos(2) < pos(4));
}

TEST(PolygraphTest, IsolatedNodesAppearInWitness) {
  Polygraph p;
  p.AddNode(42);
  p.AddArc(1, 2);
  const auto order = p.FindAcyclicOrder();
  ASSERT_TRUE(order.has_value());
  EXPECT_NE(std::find(order->begin(), order->end(), 42u), order->end());
  EXPECT_EQ(order->size(), 3u);
}

}  // namespace
}  // namespace bcc
