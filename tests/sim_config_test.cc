#include "sim/config.h"

#include <gtest/gtest.h>

namespace bcc {
namespace {

TEST(SimConfigTest, DefaultsMatchTable1) {
  const SimConfig c;
  EXPECT_EQ(c.client_txn_length, 4u);
  EXPECT_EQ(c.server_txn_length, 8u);
  EXPECT_EQ(c.server_txn_interval, 250000u);
  EXPECT_EQ(c.num_objects, 300u);
  EXPECT_EQ(c.object_size_bits, 8u * 1024u);  // 1 KB
  EXPECT_DOUBLE_EQ(c.server_read_probability, 0.5);
  EXPECT_EQ(c.mean_inter_op_delay, 65536u);
  EXPECT_EQ(c.mean_inter_txn_delay, 131072u);
  EXPECT_EQ(c.restart_delay, 0u);
  EXPECT_EQ(c.timestamp_bits, 8u);
  EXPECT_EQ(c.num_client_txns, 1000u);
  EXPECT_EQ(c.warmup_txns, 500u);
  EXPECT_TRUE(c.Validate().ok());
}

TEST(SimConfigTest, ValidateCatchesBadParameters) {
  SimConfig c;
  c.num_objects = 0;
  EXPECT_FALSE(c.Validate().ok());

  c = SimConfig{};
  c.client_txn_length = 0;
  EXPECT_FALSE(c.Validate().ok());

  c = SimConfig{};
  c.client_txn_length = 400;  // > num_objects
  EXPECT_FALSE(c.Validate().ok());

  c = SimConfig{};
  c.timestamp_bits = 0;
  EXPECT_FALSE(c.Validate().ok());

  c = SimConfig{};
  c.timestamp_bits = 33;
  EXPECT_FALSE(c.Validate().ok());

  c = SimConfig{};
  c.server_read_probability = 1.5;
  EXPECT_FALSE(c.Validate().ok());

  c = SimConfig{};
  c.warmup_txns = 1000;  // == num_client_txns
  EXPECT_FALSE(c.Validate().ok());

  c = SimConfig{};
  c.num_groups = 301;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(SimConfigTest, GeometryFollowsAlgorithm) {
  SimConfig c;
  c.algorithm = Algorithm::kFMatrix;
  EXPECT_EQ(c.Geometry().cycle_bits, 300u * (8192u + 2400u));
  c.algorithm = Algorithm::kRMatrix;
  EXPECT_EQ(c.Geometry().cycle_bits, 300u * (8192u + 8u));
  c.algorithm = Algorithm::kFMatrixNo;
  EXPECT_EQ(c.Geometry().cycle_bits, 300u * 8192u);
}

TEST(SimConfigTest, ToStringMentionsAlgorithm) {
  SimConfig c;
  c.algorithm = Algorithm::kRMatrix;
  EXPECT_NE(c.ToString().find("R-Matrix"), std::string::npos);
}

}  // namespace
}  // namespace bcc
