#include "client/update_txn.h"

#include <gtest/gtest.h>

namespace bcc {
namespace {

class UpdateTxnTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kObjects = 4;

  UpdateTxnTest()
      : mgr_(kObjects,
             [] {
               TxnManagerOptions o;
               o.record_history = true;
               return o;
             }()),
        validator_(&mgr_),
        server_(kObjects, ComputeGeometry(Algorithm::kFMatrix, kObjects, 100, 8)) {}

  const CycleSnapshot& Snap(Cycle c) {
    server_.BeginCycle(c, c * 1000, mgr_);
    return server_.snapshot();
  }

  ServerTxnManager mgr_;
  UpdateValidator validator_;
  BroadcastServer server_;
};

TEST_F(UpdateTxnTest, ReadValidatedLikeReadOnly) {
  UpdateTxnBuffer txn(100, Algorithm::kFMatrix);
  ASSERT_TRUE(txn.Read(Snap(1), 0).ok());
  EXPECT_EQ(txn.reads().size(), 1u);
}

TEST_F(UpdateTxnTest, WritesBufferLocallyWithoutChecks) {
  UpdateTxnBuffer txn(100, Algorithm::kFMatrix);
  txn.Write(2);
  txn.Write(3);
  txn.Write(2);  // rewrite
  EXPECT_TRUE(txn.has_writes());
  EXPECT_EQ(txn.writes(), (std::vector<ObjectId>{2, 3}));
  // Nothing reached the server.
  EXPECT_EQ(mgr_.num_committed(), 0u);
}

TEST_F(UpdateTxnTest, ReadYourOwnWrites) {
  UpdateTxnBuffer txn(100, Algorithm::kFMatrix);
  txn.Write(1);
  auto v = txn.Read(Snap(1), 1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->writer, 100u);           // local copy, not broadcast value
  EXPECT_TRUE(txn.reads().empty());     // not a broadcast read record
}

TEST_F(UpdateTxnTest, CommitRequestRoundTripsThroughValidator) {
  UpdateTxnBuffer txn(100, Algorithm::kFMatrix);
  ASSERT_TRUE(txn.Read(Snap(2), 0).ok());
  txn.Write(1);
  auto result = validator_.ValidateAndCommit(txn.BuildCommitRequest(), 2);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(mgr_.store().Committed(1).writer, 100u);
}

TEST_F(UpdateTxnTest, StaleReadRejectedAtServer) {
  UpdateTxnBuffer txn(100, Algorithm::kFMatrix);
  ASSERT_TRUE(txn.Read(Snap(2), 0).ok());
  txn.Write(1);
  // ob0 is overwritten after the client's read but before commit.
  mgr_.ExecuteAndCommit(ServerTxn{1, {}, {0}}, 2);
  auto result = validator_.ValidateAndCommit(txn.BuildCommitRequest(), 3);
  EXPECT_TRUE(result.status().IsAborted());
}

TEST_F(UpdateTxnTest, AbortDiscardsEverything) {
  UpdateTxnBuffer txn(100, Algorithm::kFMatrix);
  ASSERT_TRUE(txn.Read(Snap(1), 0).ok());
  txn.Write(1);
  txn.Abort();
  EXPECT_FALSE(txn.has_writes());
  EXPECT_TRUE(txn.reads().empty());
  EXPECT_EQ(mgr_.num_committed(), 0u);
}

TEST_F(UpdateTxnTest, ReadConditionFailureAbortsBeforeCommit) {
  UpdateTxnBuffer txn(100, Algorithm::kDatacycle);
  ASSERT_TRUE(txn.Read(Snap(1), 0).ok());
  mgr_.ExecuteAndCommit(ServerTxn{1, {}, {0}}, 1);
  EXPECT_TRUE(txn.Read(Snap(2), 2).status().IsAborted());
}

}  // namespace
}  // namespace bcc
