#include "matrix/wire.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace bcc {
namespace {

TEST(GeometryTest, PaperOverheadNumbers) {
  // Section 4.1: 300 objects of 1 KB, 8-bit timestamps: F-Matrix control
  // overhead ~23%, R-Matrix/Datacycle ~0.1%.
  const auto f = ComputeGeometry(Algorithm::kFMatrix, 300, 8 * 1024, 8);
  EXPECT_NEAR(f.control_fraction, 0.2266, 0.001);  // 2400 / (2400 + 8192)
  const auto r = ComputeGeometry(Algorithm::kRMatrix, 300, 8 * 1024, 8);
  EXPECT_NEAR(r.control_fraction, 0.000976, 0.0001);
  const auto d = ComputeGeometry(Algorithm::kDatacycle, 300, 8 * 1024, 8);
  EXPECT_EQ(d.control_bits, r.control_bits);
  const auto fno = ComputeGeometry(Algorithm::kFMatrixNo, 300, 8 * 1024, 8);
  EXPECT_EQ(fno.control_bits, 0u);
  EXPECT_EQ(fno.control_fraction, 0.0);
}

TEST(GeometryTest, CycleLengths) {
  const auto f = ComputeGeometry(Algorithm::kFMatrix, 300, 8 * 1024, 8);
  EXPECT_EQ(f.slot_bits, 8192u + 300u * 8u);
  EXPECT_EQ(f.cycle_bits, 300u * (8192u + 2400u));
  const auto fno = ComputeGeometry(Algorithm::kFMatrixNo, 300, 8 * 1024, 8);
  EXPECT_EQ(fno.cycle_bits, 300u * 8192u);
}

TEST(GeometryTest, GroupSpectrumInterpolates) {
  const auto g1 = ComputeGeometry(Algorithm::kFMatrix, 300, 8 * 1024, 8, 1);
  const auto g30 = ComputeGeometry(Algorithm::kFMatrix, 300, 8 * 1024, 8, 30);
  const auto g300 = ComputeGeometry(Algorithm::kFMatrix, 300, 8 * 1024, 8, 300);
  EXPECT_EQ(g1.control_bits, 8u);
  EXPECT_EQ(g30.control_bits, 240u);
  EXPECT_EQ(g300.control_bits, 2400u);
  EXPECT_LT(g1.cycle_bits, g30.cycle_bits);
  EXPECT_LT(g30.cycle_bits, g300.cycle_bits);
}

TEST(StampCodingTest, RoundTripsWithinWindow) {
  const CycleStampCodec codec(8);
  Rng rng(5);
  const Cycle current = 1000;
  std::vector<Cycle> stamps;
  for (int i = 0; i < 200; ++i) stamps.push_back(current - rng.NextBounded(255));
  const auto residues = EncodeStamps(stamps, codec);
  const auto decoded = DecodeStamps(residues, codec, current);
  EXPECT_EQ(decoded, stamps);
}

TEST(DeltaCodecTest, DiffFindsExactlyChangedEntries) {
  const CycleStampCodec codec(8);
  FMatrix prev(4), cur(4);
  cur.ApplyCommit(std::vector<ObjectId>{0}, std::vector<ObjectId>{1, 2}, 5);
  const auto diff = DeltaCodec::Diff(prev, cur, codec);
  // Columns 1 and 2 were rewritten; entries that changed: (1,1),(2,1),(1,2),
  // (2,2) set to 5; cross-dependency entries from the (empty-read) commit
  // stay 0. So exactly 4 changes.
  EXPECT_EQ(diff.size(), 4u);
  for (const auto& e : diff) {
    EXPECT_TRUE(e.col == 1 || e.col == 2);
    EXPECT_EQ(e.residue, codec.Encode(5));
  }
}

TEST(DeltaCodecTest, ApplyReconstructsMatrix) {
  const CycleStampCodec codec(8);
  Rng rng(17);
  const uint32_t n = 6;
  FMatrix server(n), client(n);
  Cycle cycle = 1;
  for (int step = 0; step < 30; ++step, ++cycle) {
    FMatrix before = server;
    const auto reads = rng.SampleWithoutReplacement(n, static_cast<uint32_t>(rng.NextBounded(3)));
    const auto writes =
        rng.SampleWithoutReplacement(n, 1 + static_cast<uint32_t>(rng.NextBounded(2)));
    server.ApplyCommit(reads, writes, cycle);
    const auto diff = DeltaCodec::Diff(before, server, codec);
    DeltaCodec::Apply(&client, diff, codec, cycle);
    ASSERT_TRUE(client == server) << "diverged at step " << step;
  }
}

TEST(DeltaCodecTest, EncodedBitsFormula) {
  // 300 objects: 9 index bits each for row/col, 8-bit stamp, 32-bit header.
  EXPECT_EQ(DeltaCodec::EncodedBits(0, 300, 8), 32u);
  EXPECT_EQ(DeltaCodec::EncodedBits(10, 300, 8), 32u + 10u * (9 + 9 + 8));
  // Tiny database edge case.
  EXPECT_EQ(DeltaCodec::EncodedBits(1, 1, 8), 32u + (1 + 1 + 8));
}

TEST(DeltaCodecTest, DeltaBeatsFullMatrixAtLowUpdateRates) {
  const CycleStampCodec codec(8);
  const uint32_t n = 300;
  FMatrix prev(n), cur(n);
  cur.ApplyCommit(std::vector<ObjectId>{3}, std::vector<ObjectId>{7, 8}, 2);
  const auto diff = DeltaCodec::Diff(prev, cur, codec);
  const uint64_t delta_bits = DeltaCodec::EncodedBits(diff.size(), n, 8);
  const uint64_t full_bits = static_cast<uint64_t>(n) * n * 8;
  EXPECT_LT(delta_bits, full_bits / 100);
}

}  // namespace
}  // namespace bcc
