#include "matrix/wire.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace bcc {
namespace {

TEST(GeometryTest, PaperOverheadNumbers) {
  // Section 4.1: 300 objects of 1 KB, 8-bit timestamps: F-Matrix control
  // overhead ~23%, R-Matrix/Datacycle ~0.1%.
  const auto f = ComputeGeometry(Algorithm::kFMatrix, 300, 8 * 1024, 8);
  EXPECT_NEAR(f.control_fraction, 0.2266, 0.001);  // 2400 / (2400 + 8192)
  const auto r = ComputeGeometry(Algorithm::kRMatrix, 300, 8 * 1024, 8);
  EXPECT_NEAR(r.control_fraction, 0.000976, 0.0001);
  const auto d = ComputeGeometry(Algorithm::kDatacycle, 300, 8 * 1024, 8);
  EXPECT_EQ(d.control_bits, r.control_bits);
  const auto fno = ComputeGeometry(Algorithm::kFMatrixNo, 300, 8 * 1024, 8);
  EXPECT_EQ(fno.control_bits, 0u);
  EXPECT_EQ(fno.control_fraction, 0.0);
}

TEST(GeometryTest, CycleLengths) {
  const auto f = ComputeGeometry(Algorithm::kFMatrix, 300, 8 * 1024, 8);
  EXPECT_EQ(f.slot_bits, 8192u + 300u * 8u);
  EXPECT_EQ(f.cycle_bits, 300u * (8192u + 2400u));
  const auto fno = ComputeGeometry(Algorithm::kFMatrixNo, 300, 8 * 1024, 8);
  EXPECT_EQ(fno.cycle_bits, 300u * 8192u);
}

TEST(GeometryTest, GroupSpectrumInterpolates) {
  const auto g1 = ComputeGeometry(Algorithm::kFMatrix, 300, 8 * 1024, 8, 1);
  const auto g30 = ComputeGeometry(Algorithm::kFMatrix, 300, 8 * 1024, 8, 30);
  const auto g300 = ComputeGeometry(Algorithm::kFMatrix, 300, 8 * 1024, 8, 300);
  EXPECT_EQ(g1.control_bits, 8u);
  EXPECT_EQ(g30.control_bits, 240u);
  EXPECT_EQ(g300.control_bits, 2400u);
  EXPECT_LT(g1.cycle_bits, g30.cycle_bits);
  EXPECT_LT(g30.cycle_bits, g300.cycle_bits);
}

TEST(StampCodingTest, RoundTripsWithinWindow) {
  const CycleStampCodec codec(8);
  Rng rng(5);
  const Cycle current = 1000;
  std::vector<Cycle> stamps;
  for (int i = 0; i < 200; ++i) stamps.push_back(current - rng.NextBounded(255));
  const auto residues = EncodeStamps(stamps, codec);
  const auto decoded = DecodeStamps(residues, codec, current);
  EXPECT_EQ(decoded, stamps);
}

TEST(DeltaCodecTest, DiffFindsExactlyChangedEntries) {
  const CycleStampCodec codec(8);
  FMatrix prev(4), cur(4);
  cur.ApplyCommit(std::vector<ObjectId>{0}, std::vector<ObjectId>{1, 2}, 5);
  const auto diff = DeltaCodec::Diff(prev, cur, codec);
  // Columns 1 and 2 were rewritten; entries that changed: (1,1),(2,1),(1,2),
  // (2,2) set to 5; cross-dependency entries from the (empty-read) commit
  // stay 0. So exactly 4 changes.
  EXPECT_EQ(diff.size(), 4u);
  for (const auto& e : diff) {
    EXPECT_TRUE(e.col == 1 || e.col == 2);
    EXPECT_EQ(e.residue, codec.Encode(5));
  }
}

TEST(DeltaCodecTest, ApplyReconstructsMatrix) {
  const CycleStampCodec codec(8);
  Rng rng(17);
  const uint32_t n = 6;
  FMatrix server(n), client(n);
  Cycle cycle = 1;
  for (int step = 0; step < 30; ++step, ++cycle) {
    FMatrix before = server;
    const auto reads = rng.SampleWithoutReplacement(n, static_cast<uint32_t>(rng.NextBounded(3)));
    const auto writes =
        rng.SampleWithoutReplacement(n, 1 + static_cast<uint32_t>(rng.NextBounded(2)));
    server.ApplyCommit(reads, writes, cycle);
    const auto diff = DeltaCodec::Diff(before, server, codec);
    DeltaCodec::Apply(&client, diff, codec, cycle);
    ASSERT_TRUE(client == server) << "diverged at step " << step;
  }
}

TEST(DeltaCodecTest, EncodedBitsFormula) {
  // 300 objects: 9 index bits each for row/col, 8-bit stamp, 32-bit header.
  EXPECT_EQ(DeltaCodec::EncodedBits(0, 300, 8), 32u);
  EXPECT_EQ(DeltaCodec::EncodedBits(10, 300, 8), 32u + 10u * (9 + 9 + 8));
}

TEST(DeltaCodecTest, EncodedBitsSingleObjectNeedsNoIndexBits) {
  // n = 1: the only (row, col) is implicit — charging bit_width(1) == 1 per
  // index (the old formula) over-counted by 2 bits per entry.
  EXPECT_EQ(DeltaCodec::EncodedBits(0, 1, 8), 32u);
  EXPECT_EQ(DeltaCodec::EncodedBits(1, 1, 8), 32u + 8u);
  EXPECT_EQ(DeltaCodec::EncodedBits(3, 1, 4), 32u + 3u * 4u);
}

TEST(DeltaCodecTest, EncodedBitsExactPowersOfTwo) {
  // Indices 0..n-1 of an exact power of two need exactly log2(n) bits.
  EXPECT_EQ(DeltaCodec::EncodedBits(1, 2, 8), 32u + (1 + 1 + 8));
  EXPECT_EQ(DeltaCodec::EncodedBits(1, 4, 8), 32u + (2 + 2 + 8));
  EXPECT_EQ(DeltaCodec::EncodedBits(1, 256, 8), 32u + (8 + 8 + 8));
  EXPECT_EQ(DeltaCodec::EncodedBits(1, 1024, 8), 32u + (10 + 10 + 8));
  // One past a power of two rounds up.
  EXPECT_EQ(DeltaCodec::EncodedBits(1, 257, 8), 32u + (9 + 9 + 8));
}

TEST(DeltaCodecTest, DiffColumnsMatchesFullScanOracleOnRandomHistories) {
  // The dirty-list path must produce exactly the oracle's output (same
  // entries, same order) on randomized commit histories, including cycles
  // with no commits and overlapping write sets.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const CycleStampCodec codec(8);
    Rng rng(seed);
    const uint32_t n = 5 + static_cast<uint32_t>(rng.NextBounded(8));
    FMatrix server(n);
    server.EnableDirtyTracking();
    FMatrix prev(n);
    Cycle cycle = 1;
    for (int step = 0; step < 60; ++step, ++cycle) {
      const uint32_t commits = static_cast<uint32_t>(rng.NextBounded(4));  // may be 0
      for (uint32_t t = 0; t < commits; ++t) {
        const auto reads =
            rng.SampleWithoutReplacement(n, static_cast<uint32_t>(rng.NextBounded(3)));
        const auto writes =
            rng.SampleWithoutReplacement(n, 1 + static_cast<uint32_t>(rng.NextBounded(3)));
        server.ApplyCommit(reads, writes, cycle);
      }
      const std::vector<ObjectId> touched = server.TakeTouchedColumns();
      const auto fast = DeltaCodec::DiffColumns(prev, server, touched, codec);
      const auto oracle = DeltaCodec::Diff(prev, server, codec);
      ASSERT_EQ(fast.size(), oracle.size()) << "seed " << seed << " step " << step;
      for (size_t k = 0; k < fast.size(); ++k) {
        EXPECT_EQ(fast[k].row, oracle[k].row);
        EXPECT_EQ(fast[k].col, oracle[k].col);
        EXPECT_EQ(fast[k].residue, oracle[k].residue);
      }
      prev = server;
    }
  }
}

TEST(DeltaCodecTest, DiffColumnsToleratesDuplicateAndUnsortedColumns) {
  const CycleStampCodec codec(8);
  FMatrix prev(4), cur(4);
  cur.ApplyCommit({}, std::vector<ObjectId>{1, 2}, 5);
  const std::vector<ObjectId> touched = {2, 1, 2, 1, 1};
  const auto fast = DeltaCodec::DiffColumns(prev, cur, touched, codec);
  const auto oracle = DeltaCodec::Diff(prev, cur, codec);
  ASSERT_EQ(fast.size(), oracle.size());
  for (size_t k = 0; k < fast.size(); ++k) {
    EXPECT_EQ(fast[k].row, oracle[k].row);
    EXPECT_EQ(fast[k].col, oracle[k].col);
  }
}

TEST(WireFormatTest, UnpackStampsRejectsTrailingBytes) {
  const CycleStampCodec codec(8);
  const std::vector<Cycle> stamps = {1, 2, 3};
  std::vector<uint8_t> bytes = PackStamps(stamps, codec);
  bytes.push_back(0x00);  // even zero-valued trailing bytes are corruption
  const auto unpacked = UnpackStamps(bytes, stamps.size(), codec, 10);
  ASSERT_FALSE(unpacked.ok());
  EXPECT_TRUE(unpacked.status().IsInvalidArgument()) << unpacked.status().ToString();
}

TEST(WireFormatTest, UnpackStampsRejectsNonzeroPaddingBits) {
  // 3 stamps x 3 bits = 9 bits -> 2 bytes with 7 padding bits in the last.
  const CycleStampCodec codec(3);
  const std::vector<Cycle> stamps = {1, 2, 3};
  std::vector<uint8_t> bytes = PackStamps(stamps, codec);
  ASSERT_EQ(bytes.size(), 2u);
  bytes.back() |= 0x80;  // flip a padding bit only
  const auto unpacked = UnpackStamps(bytes, stamps.size(), codec, 10);
  ASSERT_FALSE(unpacked.ok());
  EXPECT_TRUE(unpacked.status().IsInvalidArgument()) << unpacked.status().ToString();
}

TEST(WireFormatTest, UnpackStampsAcceptsExactFraming) {
  const CycleStampCodec codec(3);
  const std::vector<Cycle> stamps = {1, 2, 3, 4, 5};
  const std::vector<uint8_t> bytes = PackStamps(stamps, codec);
  const auto unpacked = UnpackStamps(bytes, stamps.size(), codec, 6);
  ASSERT_TRUE(unpacked.ok()) << unpacked.status().ToString();
  EXPECT_EQ(*unpacked, stamps);
}

TEST(WireFormatTest, FullMatrixControlBitsMatchesGeometry) {
  EXPECT_EQ(FullMatrixControlBits(300, 8), 300u * 300u * 8u);
  const auto g = ComputeGeometry(Algorithm::kFMatrix, 300, 8 * 1024, 8);
  EXPECT_EQ(FullMatrixControlBits(300, 8), g.control_bits * 300u);
}

TEST(DeltaCodecTest, DeltaBeatsFullMatrixAtLowUpdateRates) {
  const CycleStampCodec codec(8);
  const uint32_t n = 300;
  FMatrix prev(n), cur(n);
  cur.ApplyCommit(std::vector<ObjectId>{3}, std::vector<ObjectId>{7, 8}, 2);
  const auto diff = DeltaCodec::Diff(prev, cur, codec);
  const uint64_t delta_bits = DeltaCodec::EncodedBits(diff.size(), n, 8);
  const uint64_t full_bits = static_cast<uint64_t>(n) * n * 8;
  EXPECT_LT(delta_bits, full_bits / 100);
}

}  // namespace
}  // namespace bcc
