// Tests for the fault-injecting channel: rate validation, determinism,
// statistical behavior of loss/corruption/truncation, Gilbert–Elliott
// burstiness, and per-client stream independence.

#include <gtest/gtest.h>

#include <vector>

#include "channel/lossy_channel.h"

namespace bcc {
namespace {

std::vector<Frame> MakeFrames(size_t count, size_t bytes_per_frame = 64) {
  std::vector<Frame> frames(count);
  for (size_t i = 0; i < count; ++i) {
    frames[i].bytes.assign(bytes_per_frame, static_cast<uint8_t>(i));
  }
  return frames;
}

TEST(ChannelFaultConfigTest, ValidatesRates) {
  ChannelFaultConfig faults;
  EXPECT_TRUE(faults.Validate().ok());
  EXPECT_FALSE(faults.AnyFaults());

  faults.loss_rate = 1.5;
  EXPECT_FALSE(faults.Validate().ok());
  faults.loss_rate = -0.1;
  EXPECT_FALSE(faults.Validate().ok());
  faults.loss_rate = 0.2;
  EXPECT_TRUE(faults.Validate().ok());
  EXPECT_TRUE(faults.AnyFaults());

  faults.burst_exit_rate = 7;
  EXPECT_FALSE(faults.Validate().ok());
}

TEST(LossyChannelTest, FaultFreeChannelDeliversEverythingUntouched) {
  LossyChannel channel(ChannelFaultConfig{}, /*seed=*/1, /*num_clients=*/2);
  const std::vector<Frame> frames = MakeFrames(10);
  const Transmission tx = channel.Transmit(0, frames);
  EXPECT_EQ(tx.sent, 10u);
  EXPECT_EQ(tx.dropped, 0u);
  EXPECT_EQ(tx.corrupted, 0u);
  EXPECT_EQ(tx.truncated, 0u);
  ASSERT_EQ(tx.frames.size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_FALSE(tx.frames[i].corrupted);
    EXPECT_EQ(tx.frames[i].frame.bytes, frames[i].bytes);
  }
}

TEST(LossyChannelTest, SameSeedSameFaultSchedule) {
  ChannelFaultConfig faults;
  faults.loss_rate = 0.3;
  faults.corrupt_rate = 0.2;
  faults.truncate_rate = 0.1;
  const std::vector<Frame> frames = MakeFrames(50);

  LossyChannel a(faults, /*seed=*/99, /*num_clients=*/3);
  LossyChannel b(faults, /*seed=*/99, /*num_clients=*/3);
  for (uint32_t client = 0; client < 3; ++client) {
    for (int cycle = 0; cycle < 5; ++cycle) {
      const Transmission ta = a.Transmit(client, frames);
      const Transmission tb = b.Transmit(client, frames);
      EXPECT_EQ(ta.dropped, tb.dropped);
      EXPECT_EQ(ta.corrupted, tb.corrupted);
      EXPECT_EQ(ta.truncated, tb.truncated);
      ASSERT_EQ(ta.frames.size(), tb.frames.size());
      for (size_t i = 0; i < ta.frames.size(); ++i) {
        EXPECT_EQ(ta.frames[i].frame.bytes, tb.frames[i].frame.bytes);
        EXPECT_EQ(ta.frames[i].corrupted, tb.frames[i].corrupted);
      }
    }
  }
}

TEST(LossyChannelTest, ClientFaultStreamIndependentOfTransmitOrder) {
  // Transmitting to other clients in between must not perturb client 2's
  // fault stream — the property the DES/concurrent cross-check relies on.
  ChannelFaultConfig faults;
  faults.loss_rate = 0.25;
  const std::vector<Frame> frames = MakeFrames(40);

  LossyChannel interleaved(faults, /*seed=*/7, /*num_clients=*/3);
  LossyChannel solo(faults, /*seed=*/7, /*num_clients=*/3);
  for (int cycle = 0; cycle < 4; ++cycle) {
    interleaved.Transmit(0, frames);
    interleaved.Transmit(1, frames);
    const Transmission ti = interleaved.Transmit(2, frames);
    const Transmission ts = solo.Transmit(2, frames);
    EXPECT_EQ(ti.dropped, ts.dropped);
    ASSERT_EQ(ti.frames.size(), ts.frames.size());
    for (size_t i = 0; i < ti.frames.size(); ++i) {
      EXPECT_EQ(ti.frames[i].frame.bytes, ts.frames[i].frame.bytes);
    }
  }
}

TEST(LossyChannelTest, DifferentClientsSeeDifferentFaults) {
  ChannelFaultConfig faults;
  faults.loss_rate = 0.5;
  const std::vector<Frame> frames = MakeFrames(64);
  LossyChannel channel(faults, /*seed=*/3, /*num_clients=*/2);
  const Transmission t0 = channel.Transmit(0, frames);
  const Transmission t1 = channel.Transmit(1, frames);
  // With 64 frames at 50% loss, identical loss patterns are astronomically
  // unlikely; compare the surviving first-byte sequences.
  std::vector<uint8_t> s0, s1;
  for (const auto& d : t0.frames) s0.push_back(d.frame.bytes[0]);
  for (const auto& d : t1.frames) s1.push_back(d.frame.bytes[0]);
  EXPECT_NE(s0, s1);
}

TEST(LossyChannelTest, LossRateIsRoughlyHonored) {
  ChannelFaultConfig faults;
  faults.loss_rate = 0.1;
  LossyChannel channel(faults, /*seed=*/11, /*num_clients=*/1);
  const std::vector<Frame> frames = MakeFrames(100);
  uint64_t sent = 0, dropped = 0;
  for (int cycle = 0; cycle < 100; ++cycle) {
    const Transmission tx = channel.Transmit(0, frames);
    sent += tx.sent;
    dropped += tx.dropped;
    EXPECT_EQ(tx.sent, tx.dropped + tx.frames.size());
  }
  const double rate = static_cast<double>(dropped) / static_cast<double>(sent);
  EXPECT_NEAR(rate, 0.1, 0.02);
}

TEST(LossyChannelTest, CorruptionFlipsBitsAndMarksDelivery) {
  ChannelFaultConfig faults;
  faults.corrupt_rate = 1.0;  // every surviving frame damaged
  LossyChannel channel(faults, /*seed=*/5, /*num_clients=*/1);
  const std::vector<Frame> frames = MakeFrames(20);
  const Transmission tx = channel.Transmit(0, frames);
  EXPECT_EQ(tx.corrupted, 20u);
  ASSERT_EQ(tx.frames.size(), 20u);
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_TRUE(tx.frames[i].corrupted);
    EXPECT_NE(tx.frames[i].frame.bytes, frames[i].bytes);
    EXPECT_EQ(tx.frames[i].frame.bytes.size(), frames[i].bytes.size()) << "flips keep length";
  }
}

TEST(LossyChannelTest, TruncationShortensFramesAndMarksDelivery) {
  ChannelFaultConfig faults;
  faults.truncate_rate = 1.0;
  LossyChannel channel(faults, /*seed=*/5, /*num_clients=*/1);
  const std::vector<Frame> frames = MakeFrames(20);
  const Transmission tx = channel.Transmit(0, frames);
  EXPECT_EQ(tx.truncated, 20u);
  for (const auto& d : tx.frames) {
    EXPECT_TRUE(d.corrupted);
    EXPECT_LT(d.frame.bytes.size(), frames[0].bytes.size());
  }
}

TEST(LossyChannelTest, GilbertElliottProducesBurstierLossThanBernoulli) {
  // Same marginal-ish loss volume, very different clustering: measure the
  // mean run length of consecutive losses.
  const std::vector<Frame> frames = MakeFrames(200);
  const auto mean_loss_run = [&frames](const ChannelFaultConfig& faults) {
    LossyChannel channel(faults, /*seed=*/17, /*num_clients=*/1);
    uint64_t runs = 0, losses = 0;
    for (int cycle = 0; cycle < 50; ++cycle) {
      const Transmission tx = channel.Transmit(0, frames);
      // Reconstruct the loss pattern from surviving frame tags.
      std::vector<bool> lost(frames.size(), true);
      for (const auto& d : tx.frames) lost[d.frame.bytes[0]] = false;
      bool in_run = false;
      for (bool l : lost) {
        losses += l;
        runs += l && !in_run;
        in_run = l;
      }
    }
    return runs == 0 ? 0.0 : static_cast<double>(losses) / static_cast<double>(runs);
  };

  ChannelFaultConfig bernoulli;
  bernoulli.loss_rate = 0.08;
  ChannelFaultConfig bursty;
  bursty.burst = true;  // Good state lossless, Bad state loses 90%
  bursty.burst_enter_rate = 0.02;
  bursty.burst_exit_rate = 0.25;
  const double bernoulli_run = mean_loss_run(bernoulli);
  const double bursty_run = mean_loss_run(bursty);
  EXPECT_GT(bursty_run, 1.5 * bernoulli_run);
}

TEST(ChannelStatsTest, AccumulateSumsEveryCounter) {
  ChannelStats a;
  a.frames_sent = 10;
  a.frames_dropped = 2;
  a.stalls = 1;
  a.loss_attributed_aborts = 4;
  ChannelStats b;
  b.frames_sent = 5;
  b.resyncs = 3;
  b.tracker_desyncs = 2;
  a.Accumulate(b);
  EXPECT_EQ(a.frames_sent, 15u);
  EXPECT_EQ(a.frames_dropped, 2u);
  EXPECT_EQ(a.stalls, 1u);
  EXPECT_EQ(a.resyncs, 3u);
  EXPECT_EQ(a.tracker_desyncs, 2u);
  EXPECT_EQ(a.loss_attributed_aborts, 4u);
}

}  // namespace
}  // namespace bcc
