// HierMatrix safety and policy: the hierarchical view must be conservative
// with respect to the exact matrix on EVERY decision (aborts may be
// spurious, accepts never are), maintenance must keep the embedded exact
// matrix bit-identical to a dense oracle, and the refine/coarsen/regroup
// policy must move precision toward conflict hot spots without ever
// changing state mid-cycle.

#include "matrix/hier_matrix.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "matrix/f_matrix.h"

namespace bcc {
namespace {

constexpr uint32_t kSeeds = 25;

std::vector<ObjectId> RandomSet(Rng& rng, uint32_t n, uint32_t max_size) {
  const uint32_t k = static_cast<uint32_t>(rng.NextBounded(max_size + 1));
  return rng.SampleWithoutReplacement(n, k);
}

TEST(HierMatrixTest, ExactMirrorsDenseOracle) {
  for (uint32_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(seed + 1);
    const uint32_t n = 16 + static_cast<uint32_t>(rng.NextBounded(17));
    HierMatrix hier(n, {.initial_groups = 4});
    FMatrix dense(n);
    for (Cycle cycle = 1; cycle <= 40; ++cycle) {
      const std::vector<ObjectId> rs = RandomSet(rng, n, 4);
      std::vector<ObjectId> ws;
      while (ws.empty()) ws = RandomSet(rng, n, 4);
      hier.ApplyCommit(rs, ws, cycle);
      dense.ApplyCommit(rs, ws, cycle);
    }
    ASSERT_TRUE(hier.exact() == dense) << "seed " << seed;
  }
}

TEST(HierMatrixTest, EffectiveViewIsConservative) {
  for (uint32_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(100 + seed);
    const uint32_t n = 24;
    HierMatrix hier(n, {.initial_groups = 6, .regroup_period = 8});
    for (Cycle cycle = 1; cycle <= 30; ++cycle) {
      const std::vector<ObjectId> rs = RandomSet(rng, n, 4);
      std::vector<ObjectId> ws;
      while (ws.empty()) ws = RandomSet(rng, n, 4);
      hier.ApplyCommit(rs, ws, cycle);
      // MC(i, group(j)) >= C(i, j) always, refined or not.
      for (ObjectId i = 0; i < n; ++i) {
        for (ObjectId j = 0; j < n; ++j) {
          ASSERT_GE(hier.EffectiveAt(i, j), hier.exact().At(i, j))
              << "seed " << seed << " cycle " << cycle;
        }
      }
      hier.EndOfCycle(cycle, hier.stats().spurious_aborts);
    }
  }
}

TEST(HierMatrixTest, AcceptsAreNeverFalseAbortsOnlySpurious) {
  for (uint32_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(200 + seed);
    const uint32_t n = 20;
    HierMatrix hier(n, {.initial_groups = 5, .coarsen_idle_cycles = 6, .regroup_period = 4});
    uint64_t control_aborts = 0;
    for (Cycle cycle = 1; cycle <= 50; ++cycle) {
      const std::vector<ObjectId> rs = RandomSet(rng, n, 4);
      std::vector<ObjectId> ws;
      while (ws.empty()) ws = RandomSet(rng, n, 4);
      hier.ApplyCommit(rs, ws, cycle);
      for (int t = 0; t < 6; ++t) {
        std::vector<ReadRecord> reads;
        for (ObjectId ob : RandomSet(rng, n, 4)) {
          reads.push_back({ob, cycle - rng.NextBounded(std::min<uint64_t>(cycle, 5))});
        }
        const ObjectId j = static_cast<ObjectId>(rng.NextBounded(n));
        const bool hier_ok = hier.ReadCondition(reads, j, cycle);
        const bool exact_ok = hier.exact().ReadCondition(reads, j);
        if (hier_ok) {
          // A hierarchical accept must be an exact accept (safety).
          ASSERT_TRUE(exact_ok) << "seed " << seed << " cycle " << cycle;
        } else {
          ++control_aborts;
        }
      }
      hier.EndOfCycle(cycle, control_aborts);
    }
  }
}

TEST(HierMatrixTest, SpuriousAbortRefinesColumnNextCycle) {
  const uint32_t n = 16;
  HierMatrix hier(n, {.initial_groups = 2, .coarsen_idle_cycles = 0, .regroup_period = 0});
  // Commit touching object 0 only; objects 0..7 share group 0.
  hier.ApplyCommit({}, std::vector<ObjectId>{0}, 5);
  // Reading object 1 (same group as 0) with a read of object 0 at cycle 3:
  // MC(0, group) = 5 >= 3 fires, but exact C(0, 1) = 0 < 3 passes.
  const std::vector<ReadRecord> reads = {{0, 3}};
  EXPECT_FALSE(hier.ReadCondition(reads, 1, 5));
  EXPECT_EQ(hier.stats().spurious_aborts, 1u);
  EXPECT_FALSE(hier.Refined(1));

  hier.EndOfCycle(5, 1);
  EXPECT_TRUE(hier.Refined(1));
  EXPECT_EQ(hier.stats().refinements, 1u);
  // The refined column validates exactly: the same read now passes.
  EXPECT_TRUE(hier.ReadCondition(reads, 1, 6));
  // The genuinely conflicting column still aborts.
  EXPECT_FALSE(hier.ReadCondition(reads, 0, 6));
}

TEST(HierMatrixTest, IdleRefinedColumnsCoarsen) {
  const uint32_t n = 8;
  HierMatrix hier(n, {.initial_groups = 2, .coarsen_idle_cycles = 3, .regroup_period = 0});
  hier.ApplyCommit({}, std::vector<ObjectId>{0}, 2);
  const std::vector<ReadRecord> reads = {{0, 1}};
  EXPECT_FALSE(hier.ReadCondition(reads, 1, 2));  // spurious
  hier.EndOfCycle(2, 1);
  ASSERT_TRUE(hier.Refined(1));

  // Touch it at cycle 3, then leave it idle: coarsens once 3 idle cycles pass.
  EXPECT_TRUE(hier.ReadCondition(reads, 1, 3));
  hier.EndOfCycle(3, 1);
  hier.EndOfCycle(4, 1);
  hier.EndOfCycle(5, 1);
  EXPECT_TRUE(hier.Refined(1));
  hier.EndOfCycle(6, 1);
  EXPECT_FALSE(hier.Refined(1));
  EXPECT_EQ(hier.stats().coarsenings, 1u);
}

TEST(HierMatrixTest, RefineLimitBoundsRefinedColumns) {
  const uint32_t n = 32;
  HierMatrix hier(n, {.initial_groups = 1,
                      .refine_limit = 2,
                      .coarsen_idle_cycles = 0,
                      .regroup_period = 0});
  hier.ApplyCommit({}, std::vector<ObjectId>{0}, 4);
  const std::vector<ReadRecord> reads = {{0, 2}};
  for (ObjectId j = 1; j <= 6; ++j) EXPECT_FALSE(hier.ReadCondition(reads, j, 4));
  hier.EndOfCycle(4, 6);
  EXPECT_EQ(hier.refined_columns(), 2u);
}

TEST(HierMatrixTest, AdaptiveSplitConcentratesOnHotGroup) {
  const uint32_t n = 32;
  HierMatrix hier(n, {.initial_groups = 2,
                      .max_groups = 8,
                      .refine_limit = 1,  // starve refinement so spurious repeats
                      .coarsen_idle_cycles = 0,
                      .regroup_period = 2,
                      .split_threshold = 3});
  const uint32_t groups_before = hier.num_groups();
  uint32_t peak_groups = groups_before;
  uint64_t aborts = 0;
  for (Cycle cycle = 1; cycle <= 10; ++cycle) {
    hier.ApplyCommit({}, std::vector<ObjectId>{0}, cycle);
    // Hammer unrelated columns of group 0 with reads of object 0: every
    // abort is spurious and charges group 0.
    const std::vector<ReadRecord> reads = {{0, 1}};
    for (ObjectId j = 2; j <= 9; ++j) {
      if (!hier.ReadCondition(reads, j, cycle)) ++aborts;
    }
    hier.EndOfCycle(cycle, aborts);
    peak_groups = std::max(peak_groups, hier.num_groups());
  }
  // The hot group splits; quiet halves may later merge back, so the growth
  // shows in the peak, not necessarily the final count.
  EXPECT_GT(peak_groups, groups_before);
  EXPECT_GT(hier.stats().group_splits, 0u);
  EXPECT_GT(hier.stats().regroups, 0u);
}

TEST(HierMatrixTest, QuietGroupsMergeDownToMinGroups) {
  const uint32_t n = 16;
  HierMatrix hier(n, {.initial_groups = 8, .min_groups = 2, .regroup_period = 1});
  // Conflict-free commits, but real control aborts elsewhere keep the
  // adaptive pass engaged (the gate requires the breakdown to advance).
  uint64_t aborts = 0;
  for (Cycle cycle = 1; cycle <= 12; ++cycle) {
    hier.ApplyCommit({}, std::vector<ObjectId>{static_cast<ObjectId>(cycle % n)}, cycle);
    hier.EndOfCycle(cycle, ++aborts);
  }
  EXPECT_EQ(hier.num_groups(), 2u);
  EXPECT_GT(hier.stats().group_merges, 0u);
}

TEST(HierMatrixTest, RegroupGateHoldsPartitionWithoutAborts) {
  const uint32_t n = 16;
  HierMatrix hier(n, {.initial_groups = 8, .min_groups = 1, .regroup_period = 1});
  for (Cycle cycle = 1; cycle <= 12; ++cycle) {
    hier.ApplyCommit({}, std::vector<ObjectId>{static_cast<ObjectId>(cycle % n)}, cycle);
    hier.EndOfCycle(cycle, /*control_conflict_aborts=*/0);
  }
  EXPECT_EQ(hier.num_groups(), 8u);
  EXPECT_EQ(hier.stats().regroups, 0u);
}

TEST(HierMatrixTest, ControlBitsCoverGroupsRefinedColumnsAndMapping) {
  const uint32_t n = 16;
  HierMatrix hier(n, {.initial_groups = 4, .regroup_period = 0});
  const uint64_t empty_bits = hier.ControlBits(8);
  EXPECT_EQ(empty_bits, 32u);  // all group columns empty, nothing refined

  hier.ApplyCommit({}, std::vector<ObjectId>{0, 5}, 3);
  const uint64_t after_commit = hier.ControlBits(8);
  EXPECT_GT(after_commit, empty_bits);

  // Refining a column adds its exact entries plus a mapping update.
  const std::vector<ReadRecord> reads = {{0, 2}};
  EXPECT_FALSE(hier.ReadCondition(reads, 1, 3));
  hier.EndOfCycle(3, 1);
  ASSERT_TRUE(hier.Refined(1));
  EXPECT_GT(hier.ControlBits(8), 32u);
}

TEST(HierMatrixTest, EffectiveAtTracksRefinement) {
  const uint32_t n = 8;
  HierMatrix hier(n, {.initial_groups = 1, .regroup_period = 0});
  hier.ApplyCommit({}, std::vector<ObjectId>{3}, 4);
  // Unrefined: every column sees the group aggregate.
  EXPECT_EQ(hier.EffectiveAt(3, 0), 4u);
  EXPECT_EQ(hier.exact().At(3, 0), 0u);
  const std::vector<ReadRecord> reads = {{3, 2}};
  EXPECT_FALSE(hier.ReadCondition(reads, 0, 4));
  hier.EndOfCycle(4, 1);
  EXPECT_EQ(hier.EffectiveAt(3, 0), 0u);  // refined -> exact
  EXPECT_EQ(hier.EffectiveAt(3, 3), 4u);
}

}  // namespace
}  // namespace bcc
