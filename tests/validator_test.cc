#include "server/validator.h"

#include <gtest/gtest.h>

#include "cc/conflict_serializability.h"

namespace bcc {
namespace {

class ValidatorTest : public ::testing::Test {
 protected:
  ValidatorTest() : mgr_(4, [] {
                      TxnManagerOptions o;
                      o.record_history = true;
                      return o;
                    }()),
                    validator_(&mgr_) {}

  ServerTxnManager mgr_;
  UpdateValidator validator_;
};

TEST_F(ValidatorTest, FreshReadsCommit) {
  // Server writes ob0 in cycle 2; client reads it at cycle 3 (current) and
  // writes ob1.
  mgr_.ExecuteAndCommit(ServerTxn{1, {}, {0}}, 2);
  ClientUpdateRequest req;
  req.id = 100;
  req.reads = {{0, 3}};
  req.writes = {1};
  auto result = validator_.ValidateAndCommit(req, /*current_cycle=*/3);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(*result, 3u);
  EXPECT_EQ(mgr_.store().Committed(1).writer, 100u);
  EXPECT_EQ(validator_.num_validated(), 1u);
}

TEST_F(ValidatorTest, StaleReadRejected) {
  // Client read ob0 at cycle 1, but the server wrote it at cycle 2.
  mgr_.ExecuteAndCommit(ServerTxn{1, {}, {0}}, 2);
  ClientUpdateRequest req;
  req.id = 100;
  req.reads = {{0, 1}};
  req.writes = {1};
  auto result = validator_.ValidateAndCommit(req, 3);
  EXPECT_TRUE(result.status().IsAborted());
  EXPECT_EQ(mgr_.store().Committed(1).writer, kInitTxn);  // nothing installed
  EXPECT_EQ(validator_.num_rejected(), 1u);
}

TEST_F(ValidatorTest, BlindWriteAlwaysCommits) {
  ClientUpdateRequest req;
  req.id = 100;
  req.writes = {2};
  EXPECT_TRUE(validator_.ValidateAndCommit(req, 1).ok());
}

TEST_F(ValidatorTest, ReadExactlyAtWriteCycleIsStale) {
  // A write committing in cycle c is NOT visible to a read tagged cycle c
  // (the read saw the beginning-of-cycle state), so validation must reject.
  mgr_.ExecuteAndCommit(ServerTxn{1, {}, {0}}, 5);
  ClientUpdateRequest req;
  req.id = 100;
  req.reads = {{0, 5}};
  req.writes = {1};
  EXPECT_TRUE(validator_.ValidateAndCommit(req, 5).status().IsAborted());
}

TEST_F(ValidatorTest, CommittedClientTxnsKeepUpdateHistorySerializable) {
  mgr_.ExecuteAndCommit(ServerTxn{1, {}, {0}}, 1);
  ClientUpdateRequest a;
  a.id = 100;
  a.reads = {{0, 2}};
  a.writes = {1};
  ASSERT_TRUE(validator_.ValidateAndCommit(a, 2).ok());
  mgr_.ExecuteAndCommit(ServerTxn{2, {1}, {2}}, 3);
  ClientUpdateRequest b;
  b.id = 101;
  b.reads = {{2, 4}, {0, 4}};
  b.writes = {3};
  ASSERT_TRUE(validator_.ValidateAndCommit(b, 4).ok());
  EXPECT_TRUE(IsConflictSerializable(mgr_.recorded_history()));
}

TEST_F(ValidatorTest, RejectionLeavesMatricesUntouched) {
  mgr_.ExecuteAndCommit(ServerTxn{1, {}, {0}}, 2);
  const Cycle mc_before = mgr_.mc_vector().At(1);
  ClientUpdateRequest req;
  req.id = 100;
  req.reads = {{0, 1}};  // stale
  req.writes = {1};
  ASSERT_TRUE(validator_.ValidateAndCommit(req, 3).status().IsAborted());
  EXPECT_EQ(mgr_.mc_vector().At(1), mc_before);
  EXPECT_EQ(mgr_.num_committed(), 1u);
}

}  // namespace
}  // namespace bcc
