#include "server/exec/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace bcc {
namespace {

TEST(LockManagerTest, SharedLocksAreCompatible) {
  LockManager lm;
  EXPECT_EQ(lm.Acquire(3, LockMode::kShared, 1), LockOutcome::kGranted);
  EXPECT_EQ(lm.Acquire(3, LockMode::kShared, 2), LockOutcome::kGranted);
  EXPECT_EQ(lm.Acquire(3, LockMode::kShared, 3), LockOutcome::kGranted);
  EXPECT_EQ(lm.die_count(), 0u);
  lm.Release(3, 1);
  lm.Release(3, 2);
  lm.Release(3, 3);
}

TEST(LockManagerTest, IndependentObjectsNeverConflict) {
  LockManager lm(4);  // few stripes: objects 0 and 4 share a stripe
  EXPECT_EQ(lm.Acquire(0, LockMode::kExclusive, 1), LockOutcome::kGranted);
  EXPECT_EQ(lm.Acquire(4, LockMode::kExclusive, 2), LockOutcome::kGranted);
  lm.Release(0, 1);
  lm.Release(4, 2);
}

TEST(LockManagerTest, YoungerRequesterDiesImmediately) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(7, LockMode::kExclusive, 1), LockOutcome::kGranted);
  // ts 2 is younger than the holder (1): wait-die rules it out at once.
  EXPECT_EQ(lm.Acquire(7, LockMode::kExclusive, 2), LockOutcome::kDie);
  EXPECT_EQ(lm.Acquire(7, LockMode::kShared, 3), LockOutcome::kDie);
  EXPECT_EQ(lm.die_count(), 2u);
  lm.Release(7, 1);
  // With the holder gone the former victims are granted on retry.
  EXPECT_EQ(lm.Acquire(7, LockMode::kExclusive, 2), LockOutcome::kGranted);
  lm.Release(7, 2);
}

TEST(LockManagerTest, OlderRequesterWaitsForYoungerHolder) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(5, LockMode::kExclusive, 9), LockOutcome::kGranted);

  std::atomic<bool> granted{false};
  std::thread older([&] {
    // ts 1 is older than the holder (9): it must block, never die.
    EXPECT_EQ(lm.Acquire(5, LockMode::kExclusive, 1), LockOutcome::kGranted);
    granted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(granted.load());
  lm.Release(5, 9);
  older.join();
  EXPECT_TRUE(granted.load());
  EXPECT_EQ(lm.die_count(), 0u);
  EXPECT_GE(lm.wait_count(), 1u);
  lm.Release(5, 1);
}

TEST(LockManagerTest, SharedHoldersBlockOlderExclusiveUntilAllRelease) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(2, LockMode::kShared, 5), LockOutcome::kGranted);
  ASSERT_EQ(lm.Acquire(2, LockMode::kShared, 6), LockOutcome::kGranted);

  std::atomic<bool> granted{false};
  std::thread older([&] {
    EXPECT_EQ(lm.Acquire(2, LockMode::kExclusive, 1), LockOutcome::kGranted);
    granted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(granted.load());
  lm.Release(2, 5);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(granted.load());  // one shared holder remains
  lm.Release(2, 6);
  older.join();
  EXPECT_TRUE(granted.load());
  lm.Release(2, 1);
}

TEST(LockManagerTest, AbBaConflictNeverDeadlocks) {
  // The classic AB-BA interleaving: old holds a and wants b; young holds b
  // and wants a. Wait-die breaks it without a detector — the young side dies
  // on a (its holder is older), releases b, and the old side proceeds.
  LockManager lm;
  ASSERT_EQ(lm.Acquire(0, LockMode::kExclusive, 1), LockOutcome::kGranted);  // old: a
  ASSERT_EQ(lm.Acquire(1, LockMode::kExclusive, 2), LockOutcome::kGranted);  // young: b

  EXPECT_EQ(lm.Acquire(0, LockMode::kExclusive, 2), LockOutcome::kDie);  // young wants a
  lm.Release(1, 2);  // young aborts, freeing b

  std::thread old_side([&] {
    EXPECT_EQ(lm.Acquire(1, LockMode::kExclusive, 1), LockOutcome::kGranted);  // old wants b
    lm.Release(1, 1);
    lm.Release(0, 1);
  });
  old_side.join();
  EXPECT_EQ(lm.die_count(), 1u);
}

TEST(LockManagerTest, ReRequestOfHeldModeIsIdempotent) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(4, LockMode::kShared, 1), LockOutcome::kGranted);
  // Same mode again, and exclusive-then-anything: no duplicate holder entry
  // is registered, so the single Release below fully frees the object.
  EXPECT_EQ(lm.Acquire(4, LockMode::kShared, 1), LockOutcome::kGranted);
  ASSERT_EQ(lm.Acquire(8, LockMode::kExclusive, 1), LockOutcome::kGranted);
  EXPECT_EQ(lm.Acquire(8, LockMode::kExclusive, 1), LockOutcome::kGranted);
  EXPECT_EQ(lm.Acquire(8, LockMode::kShared, 1), LockOutcome::kGranted);  // weaker
  lm.Release(4, 1);
  lm.Release(8, 1);
  // A younger transaction sees both objects free.
  EXPECT_EQ(lm.Acquire(4, LockMode::kExclusive, 2), LockOutcome::kGranted);
  EXPECT_EQ(lm.Acquire(8, LockMode::kExclusive, 2), LockOutcome::kGranted);
  lm.Release(4, 2);
  lm.Release(8, 2);
}

TEST(LockManagerTest, SoleSharedHolderUpgradesInPlace) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(6, LockMode::kShared, 3), LockOutcome::kGranted);
  EXPECT_EQ(lm.Acquire(6, LockMode::kExclusive, 3), LockOutcome::kGranted);
  // The upgraded lock is exclusive: a younger shared request dies.
  EXPECT_EQ(lm.Acquire(6, LockMode::kShared, 4), LockOutcome::kDie);
  // One Release covers the upgraded hold.
  lm.Release(6, 3);
  EXPECT_EQ(lm.Acquire(6, LockMode::kShared, 4), LockOutcome::kGranted);
  lm.Release(6, 4);
}

TEST(LockManagerTest, YoungerUpgraderDiesButKeepsItsSharedHold) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(9, LockMode::kShared, 1), LockOutcome::kGranted);  // old
  ASSERT_EQ(lm.Acquire(9, LockMode::kShared, 2), LockOutcome::kGranted);  // young
  // The young holder wants exclusive; the other holder is older, so wait-die
  // kills the upgrade — but the shared hold survives for the caller's abort
  // path to release.
  EXPECT_EQ(lm.Acquire(9, LockMode::kExclusive, 2), LockOutcome::kDie);
  EXPECT_EQ(lm.die_count(), 1u);
  lm.Release(9, 2);  // the aborting transaction's release_all
  // With the young holder gone, the old one is the sole holder: upgrade.
  EXPECT_EQ(lm.Acquire(9, LockMode::kExclusive, 1), LockOutcome::kGranted);
  lm.Release(9, 1);
}

TEST(LockManagerTest, OlderUpgraderWaitsForYoungerSharedHolder) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(3, LockMode::kShared, 1), LockOutcome::kGranted);  // old
  ASSERT_EQ(lm.Acquire(3, LockMode::kShared, 7), LockOutcome::kGranted);  // young

  std::atomic<bool> upgraded{false};
  std::thread older([&] {
    // ts 1 is older than the remaining holder (7): it blocks until the
    // young shared hold drains, then promotes in place.
    EXPECT_EQ(lm.Acquire(3, LockMode::kExclusive, 1), LockOutcome::kGranted);
    upgraded.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(upgraded.load());
  lm.Release(3, 7);
  older.join();
  EXPECT_TRUE(upgraded.load());
  EXPECT_EQ(lm.die_count(), 0u);
  EXPECT_GE(lm.wait_count(), 1u);
  // The promotion consumed no extra holder entry: one Release frees it.
  lm.Release(3, 1);
  EXPECT_EQ(lm.Acquire(3, LockMode::kExclusive, 9), LockOutcome::kGranted);
  lm.Release(3, 9);
}

TEST(LockManagerTest, ParkedExclusiveWaiterDiesWhenOlderSharedHolderArrives) {
  // Regression: a fresh exclusive requester parks while every holder is
  // younger. Shared-on-shared grants skip the age check, so an *older*
  // shared holder can then slide in — flipping the parked waiter's wait-die
  // verdict to die. The grant must wake it; before the fix it slept forever
  // while younger transactions died against its other locks.
  LockManager lm;
  ASSERT_EQ(lm.Acquire(1, LockMode::kShared, 5), LockOutcome::kGranted);  // young holder

  std::thread waiter([&] {
    // ts 3 is older than the holder (5): it parks. Once ts 2 joins below it
    // must die — never hang.
    EXPECT_EQ(lm.Acquire(1, LockMode::kExclusive, 3), LockOutcome::kDie);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(lm.Acquire(1, LockMode::kShared, 2), LockOutcome::kGranted);  // older slides in
  waiter.join();
  EXPECT_EQ(lm.die_count(), 1u);
  lm.Release(1, 5);
  lm.Release(1, 2);
  // The table fully drained: a fresh exclusive request sees the object free.
  EXPECT_EQ(lm.Acquire(1, LockMode::kExclusive, 9), LockOutcome::kGranted);
  lm.Release(1, 9);
}

TEST(LockManagerTest, ParkedUpgraderDiesWhenOlderSharedHolderArrives) {
  // Same shape for a parked shared->exclusive upgrader: it parked as the
  // oldest holder, then an older shared holder joined. The grant must wake
  // it to die (keeping its shared hold for the caller's release-all).
  LockManager lm;
  ASSERT_EQ(lm.Acquire(2, LockMode::kShared, 10), LockOutcome::kGranted);
  ASSERT_EQ(lm.Acquire(2, LockMode::kShared, 20), LockOutcome::kGranted);

  std::thread upgrader([&] {
    // ts 10 is older than the other holder (20): the upgrade parks. Once
    // ts 5 joins it must die.
    EXPECT_EQ(lm.Acquire(2, LockMode::kExclusive, 10), LockOutcome::kDie);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(lm.Acquire(2, LockMode::kShared, 5), LockOutcome::kGranted);
  upgrader.join();
  EXPECT_EQ(lm.die_count(), 1u);
  lm.Release(2, 10);  // the dying upgrader's shared hold survives until here
  lm.Release(2, 20);
  lm.Release(2, 5);
  EXPECT_EQ(lm.Acquire(2, LockMode::kExclusive, 9), LockOutcome::kGranted);
  lm.Release(2, 9);
}

}  // namespace
}  // namespace bcc
