#include "server/exec/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace bcc {
namespace {

TEST(LockManagerTest, SharedLocksAreCompatible) {
  LockManager lm;
  EXPECT_EQ(lm.Acquire(3, LockMode::kShared, 1), LockOutcome::kGranted);
  EXPECT_EQ(lm.Acquire(3, LockMode::kShared, 2), LockOutcome::kGranted);
  EXPECT_EQ(lm.Acquire(3, LockMode::kShared, 3), LockOutcome::kGranted);
  EXPECT_EQ(lm.die_count(), 0u);
  lm.Release(3, 1);
  lm.Release(3, 2);
  lm.Release(3, 3);
}

TEST(LockManagerTest, IndependentObjectsNeverConflict) {
  LockManager lm(4);  // few stripes: objects 0 and 4 share a stripe
  EXPECT_EQ(lm.Acquire(0, LockMode::kExclusive, 1), LockOutcome::kGranted);
  EXPECT_EQ(lm.Acquire(4, LockMode::kExclusive, 2), LockOutcome::kGranted);
  lm.Release(0, 1);
  lm.Release(4, 2);
}

TEST(LockManagerTest, YoungerRequesterDiesImmediately) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(7, LockMode::kExclusive, 1), LockOutcome::kGranted);
  // ts 2 is younger than the holder (1): wait-die rules it out at once.
  EXPECT_EQ(lm.Acquire(7, LockMode::kExclusive, 2), LockOutcome::kDie);
  EXPECT_EQ(lm.Acquire(7, LockMode::kShared, 3), LockOutcome::kDie);
  EXPECT_EQ(lm.die_count(), 2u);
  lm.Release(7, 1);
  // With the holder gone the former victims are granted on retry.
  EXPECT_EQ(lm.Acquire(7, LockMode::kExclusive, 2), LockOutcome::kGranted);
  lm.Release(7, 2);
}

TEST(LockManagerTest, OlderRequesterWaitsForYoungerHolder) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(5, LockMode::kExclusive, 9), LockOutcome::kGranted);

  std::atomic<bool> granted{false};
  std::thread older([&] {
    // ts 1 is older than the holder (9): it must block, never die.
    EXPECT_EQ(lm.Acquire(5, LockMode::kExclusive, 1), LockOutcome::kGranted);
    granted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(granted.load());
  lm.Release(5, 9);
  older.join();
  EXPECT_TRUE(granted.load());
  EXPECT_EQ(lm.die_count(), 0u);
  EXPECT_GE(lm.wait_count(), 1u);
  lm.Release(5, 1);
}

TEST(LockManagerTest, SharedHoldersBlockOlderExclusiveUntilAllRelease) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(2, LockMode::kShared, 5), LockOutcome::kGranted);
  ASSERT_EQ(lm.Acquire(2, LockMode::kShared, 6), LockOutcome::kGranted);

  std::atomic<bool> granted{false};
  std::thread older([&] {
    EXPECT_EQ(lm.Acquire(2, LockMode::kExclusive, 1), LockOutcome::kGranted);
    granted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(granted.load());
  lm.Release(2, 5);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(granted.load());  // one shared holder remains
  lm.Release(2, 6);
  older.join();
  EXPECT_TRUE(granted.load());
  lm.Release(2, 1);
}

TEST(LockManagerTest, AbBaConflictNeverDeadlocks) {
  // The classic AB-BA interleaving: old holds a and wants b; young holds b
  // and wants a. Wait-die breaks it without a detector — the young side dies
  // on a (its holder is older), releases b, and the old side proceeds.
  LockManager lm;
  ASSERT_EQ(lm.Acquire(0, LockMode::kExclusive, 1), LockOutcome::kGranted);  // old: a
  ASSERT_EQ(lm.Acquire(1, LockMode::kExclusive, 2), LockOutcome::kGranted);  // young: b

  EXPECT_EQ(lm.Acquire(0, LockMode::kExclusive, 2), LockOutcome::kDie);  // young wants a
  lm.Release(1, 2);  // young aborts, freeing b

  std::thread old_side([&] {
    EXPECT_EQ(lm.Acquire(1, LockMode::kExclusive, 1), LockOutcome::kGranted);  // old wants b
    lm.Release(1, 1);
    lm.Release(0, 1);
  });
  old_side.join();
  EXPECT_EQ(lm.die_count(), 1u);
}

}  // namespace
}  // namespace bcc
