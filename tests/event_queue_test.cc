#include "des/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace bcc {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  q.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(5, [&] { order.push_back(1); });
  q.ScheduleAt(5, [&] { order.push_back(2); });
  q.ScheduleAt(5, [&] { order.push_back(3); });
  q.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  SimTime seen = 0;
  q.ScheduleAt(100, [&] { q.ScheduleAfter(50, [&] { seen = q.now(); }); });
  q.Run();
  EXPECT_EQ(seen, 150u);
}

TEST(EventQueueTest, LateSchedulingClampsToNow) {
  EventQueue q;
  SimTime seen = 0;
  q.ScheduleAt(100, [&] {
    q.ScheduleAt(10, [&] { seen = q.now(); });  // in the past
  });
  q.Run();
  EXPECT_EQ(seen, 100u);
}

TEST(EventQueueTest, EventsCanChainIndefinitely) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 10) q.ScheduleAfter(7, tick);
  };
  q.ScheduleAt(0, tick);
  q.Run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(q.now(), 63u);
}

TEST(EventQueueTest, RunWithLimitStopsEarly) {
  EventQueue q;
  int count = 0;
  for (int i = 0; i < 10; ++i) q.ScheduleAt(i, [&] { ++count; });
  EXPECT_EQ(q.Run(4), 4u);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(q.pending(), 6u);
}

TEST(EventQueueTest, RunUntilHonorsDeadlineInclusive) {
  EventQueue q;
  std::vector<SimTime> fired;
  for (SimTime t : {5u, 10u, 15u, 20u}) q.ScheduleAt(t, [&, t] { fired.push_back(t); });
  q.RunUntil(15);
  EXPECT_EQ(fired, (std::vector<SimTime>{5, 10, 15}));
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, StepOnEmptyReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.Step());
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace bcc
