#include "common/bitstream.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "matrix/wire.h"

namespace bcc {
namespace {

TEST(BitstreamTest, RoundTripMixedWidths) {
  BitWriter w;
  w.Write(0b101, 3);
  w.Write(0xdead, 16);
  w.Write(1, 1);
  w.Write(0x12345678, 32);
  EXPECT_EQ(w.bit_size(), 52u);
  EXPECT_EQ(w.bytes().size(), 7u);  // ceil(52 / 8)

  BitReader r(w.bytes());
  uint32_t v = 0;
  ASSERT_TRUE(r.Read(3, &v).ok());
  EXPECT_EQ(v, 0b101u);
  ASSERT_TRUE(r.Read(16, &v).ok());
  EXPECT_EQ(v, 0xdeadu);
  ASSERT_TRUE(r.Read(1, &v).ok());
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(r.Read(32, &v).ok());
  EXPECT_EQ(v, 0x12345678u);
}

TEST(BitstreamTest, WriteMasksHighBits) {
  BitWriter w;
  w.Write(0xff, 3);  // only low 3 bits kept
  BitReader r(w.bytes());
  uint32_t v = 0;
  ASSERT_TRUE(r.Read(3, &v).ok());
  EXPECT_EQ(v, 0b111u);
}

TEST(BitstreamTest, ReadPastEndFails) {
  BitWriter w;
  w.Write(5, 4);
  BitReader r(w.bytes());
  uint32_t v = 0;
  ASSERT_TRUE(r.Read(4, &v).ok());
  // 4 padding bits remain in the byte; asking for more than that fails.
  EXPECT_EQ(r.bits_remaining(), 4u);
  EXPECT_TRUE(r.Read(5, &v).IsOutOfRange());
}

TEST(BitstreamTest, RandomRoundTrip) {
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    BitWriter w;
    std::vector<std::pair<uint32_t, unsigned>> items;
    for (int i = 0; i < 50; ++i) {
      const unsigned bits = 1 + static_cast<unsigned>(rng.NextBounded(32));
      const uint32_t value =
          static_cast<uint32_t>(rng.NextU64()) & (bits == 32 ? ~0u : ((1u << bits) - 1));
      items.emplace_back(value, bits);
      w.Write(value, bits);
    }
    BitReader r(w.bytes());
    for (const auto& [value, bits] : items) {
      uint32_t v = 0;
      ASSERT_TRUE(r.Read(bits, &v).ok());
      EXPECT_EQ(v, value);
    }
  }
}

TEST(PackStampsTest, ExactWireSizeMatchesPaperFormula) {
  // A 300-entry column of 8-bit stamps is exactly 2400 bits = 300 bytes.
  const CycleStampCodec codec(8);
  std::vector<Cycle> column(300, 7);
  const auto bytes = PackStamps(column, codec);
  EXPECT_EQ(bytes.size(), 300u);

  // Odd widths pack without alignment: 300 entries x 5 bits = 1500 bits.
  const CycleStampCodec codec5(5);
  EXPECT_EQ(PackStamps(column, codec5).size(), (300u * 5 + 7) / 8);
}

TEST(PackStampsTest, RoundTripThroughTheAir) {
  const CycleStampCodec codec(8);
  Rng rng(17);
  const Cycle current = 1000;
  std::vector<Cycle> column;
  for (int i = 0; i < 64; ++i) column.push_back(current - rng.NextBounded(200));
  const auto bytes = PackStamps(column, codec);
  auto decoded = UnpackStamps(bytes, column.size(), codec, current);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, column);
}

TEST(PackStampsTest, UnpackDetectsTruncation) {
  const CycleStampCodec codec(8);
  std::vector<Cycle> column(10, 1);
  auto bytes = PackStamps(column, codec);
  bytes.resize(5);
  EXPECT_TRUE(UnpackStamps(bytes, 10, codec, 100).status().IsOutOfRange());
}

}  // namespace
}  // namespace bcc
