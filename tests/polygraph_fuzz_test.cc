// Cross-validation of the optimized (unit-propagating) polygraph search
// against brute-force enumeration of every arm choice, on random polygraphs.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/polygraph.h"

namespace bcc {
namespace {

// Ground truth: try all 2^|B| arm subsets.
bool BruteForceAcyclic(const Digraph& base, const std::vector<Polygraph::Bipath>& bipaths) {
  const size_t n = bipaths.size();
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    Digraph candidate = base;
    for (size_t i = 0; i < n; ++i) {
      const Polygraph::Arc& arm = (mask >> i) & 1 ? bipaths[i].second : bipaths[i].first;
      candidate.AddEdge(arm.first, arm.second);
    }
    if (!candidate.HasCycle()) return true;
  }
  return n == 0 && !base.HasCycle();
}

struct FuzzCase {
  uint32_t nodes;
  uint32_t arcs;
  uint32_t bipaths;
  uint64_t seed;
  int trials;
};

class PolygraphFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(PolygraphFuzzTest, SearchMatchesBruteForce) {
  const FuzzCase& tc = GetParam();
  Rng rng(tc.seed);
  int acyclic_count = 0;
  for (int trial = 0; trial < tc.trials; ++trial) {
    Polygraph p;
    Digraph base;
    std::vector<Polygraph::Bipath> bipaths;
    for (uint32_t i = 0; i < tc.nodes; ++i) {
      p.AddNode(i);
      base.AddNode(i);
    }
    auto random_node = [&] { return static_cast<uint32_t>(rng.NextBounded(tc.nodes)); };
    for (uint32_t a = 0; a < tc.arcs; ++a) {
      const uint32_t u = random_node(), v = random_node();
      if (u == v) continue;
      p.AddArc(u, v);
      base.AddEdge(u, v);
    }
    for (uint32_t b = 0; b < tc.bipaths; ++b) {
      // Arbitrary arcs are fine for the solver: the Definition 4 shape is a
      // property of paper-generated polygraphs, not a solver requirement.
      Polygraph::Arc first{random_node(), random_node()};
      Polygraph::Arc second{random_node(), random_node()};
      p.AddBipath(first, second);
      bipaths.push_back({first, second});
    }
    const bool expected = BruteForceAcyclic(base, bipaths);
    EXPECT_EQ(p.IsAcyclic(), expected) << "trial " << trial;
    acyclic_count += expected;
    // A witness, when produced, must satisfy every bipath and every arc.
    if (auto order = p.FindAcyclicOrder()) {
      auto pos = [&](uint32_t k) {
        return std::find(order->begin(), order->end(), k) - order->begin();
      };
      for (uint32_t u = 0; u < tc.nodes; ++u) {
        for (uint32_t v : base.Successors(u)) EXPECT_LT(pos(u), pos(v));
      }
      for (const auto& bp : bipaths) {
        const bool first_ok =
            bp.first.first == bp.first.second ? false : pos(bp.first.first) < pos(bp.first.second);
        const bool second_ok = bp.second.first == bp.second.second
                                   ? false
                                   : pos(bp.second.first) < pos(bp.second.second);
        EXPECT_TRUE(first_ok || second_ok);
      }
    }
  }
  // The generator must exercise both outcomes.
  EXPECT_GT(acyclic_count, 0);
  EXPECT_LT(acyclic_count, tc.trials);
}

INSTANTIATE_TEST_SUITE_P(Random, PolygraphFuzzTest,
                         ::testing::Values(FuzzCase{4, 3, 3, 101, 300},
                                           FuzzCase{5, 4, 5, 102, 200},
                                           FuzzCase{6, 6, 6, 103, 150},
                                           FuzzCase{3, 2, 8, 104, 150},
                                           FuzzCase{7, 8, 4, 105, 150}),
                         [](const ::testing::TestParamInfo<FuzzCase>& info) {
                           return "n" + std::to_string(info.param.nodes) + "b" +
                                  std::to_string(info.param.bipaths) + "s" +
                                  std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace bcc
