#include "server/exec/mvcc_store.h"

#include <gtest/gtest.h>

#include <vector>

namespace bcc {
namespace {

TEST(MvccStoreTest, InitialReadsObserveT0) {
  MvccStore store(4);
  for (ObjectId ob = 0; ob < 4; ++ob) {
    const auto r = store.Read(ob, 10);
    EXPECT_EQ(r.writer, kInitTxn);
    EXPECT_EQ(r.version_ts, 0u);
  }
}

TEST(MvccStoreTest, ReadersObserveNewestVersionAtOrBelowTheirTimestamp) {
  MvccStore store(2);
  const ObjectId kOb = 1;
  ASSERT_TRUE(store.CommitWrites(std::vector<ObjectId>{kOb}, /*writer=*/7, /*ts=*/5));
  EXPECT_EQ(store.Read(kOb, 4).writer, kInitTxn);
  EXPECT_EQ(store.Read(kOb, 5).writer, 7u);
  EXPECT_EQ(store.Read(kOb, 9).writer, 7u);
  EXPECT_EQ(store.VersionCount(kOb), 2u);
}

TEST(MvccStoreTest, WriteBelowAYoungerReaderIsRejected) {
  MvccStore store(1);
  const ObjectId kOb = 0;
  // A reader at ts 10 observed the initial state. A writer at ts 5 would
  // retroactively change what that reader should have seen: reject it.
  store.Read(kOb, 10);
  EXPECT_FALSE(store.CommitWrites(std::vector<ObjectId>{kOb}, /*writer=*/3, /*ts=*/5));
  EXPECT_EQ(store.VersionCount(kOb), 1u);
  // The same writer retried with a fresh timestamp past the reader is fine.
  EXPECT_TRUE(store.CommitWrites(std::vector<ObjectId>{kOb}, /*writer=*/3, /*ts=*/11));
  EXPECT_EQ(store.Read(kOb, 11).writer, 3u);
  EXPECT_EQ(store.Read(kOb, 10).writer, kInitTxn);  // older reads still see t0
}

TEST(MvccStoreTest, UnreadGapAcceptsAnOlderWriter) {
  MvccStore store(1);
  const ObjectId kOb = 0;
  ASSERT_TRUE(store.CommitWrites(std::vector<ObjectId>{kOb}, /*writer=*/9, /*ts=*/6));
  // Nothing read the pre-state of ts 6, so a writer can still slot in below.
  EXPECT_TRUE(store.CommitWrites(std::vector<ObjectId>{kOb}, /*writer=*/4, /*ts=*/3));
  EXPECT_EQ(store.VersionCount(kOb), 3u);
  EXPECT_EQ(store.Read(kOb, 3).writer, 4u);
  EXPECT_EQ(store.Read(kOb, 5).writer, 4u);
  EXPECT_EQ(store.Read(kOb, 6).writer, 9u);
}

TEST(MvccStoreTest, MultiObjectCommitIsAllOrNothing) {
  MvccStore store(2);
  store.Read(/*ob=*/1, /*ts=*/10);  // makes object 1 reject writers below ts 10
  EXPECT_FALSE(store.CommitWrites(std::vector<ObjectId>{0, 1}, /*writer=*/5, /*ts=*/7));
  // Object 0 passed its check but must not have been installed.
  EXPECT_EQ(store.VersionCount(0), 1u);
  EXPECT_EQ(store.VersionCount(1), 1u);
  EXPECT_TRUE(store.CommitWrites(std::vector<ObjectId>{0, 1}, /*writer=*/5, /*ts=*/11));
  EXPECT_EQ(store.VersionCount(0), 2u);
  EXPECT_EQ(store.VersionCount(1), 2u);
}

TEST(MvccStoreTest, EpochGcKeepsExactlyTheVisibleVersion) {
  MvccStore store(1);
  const ObjectId kOb = 0;
  for (uint64_t ts = 1; ts <= 4; ++ts) {
    ASSERT_TRUE(store.CommitWrites(std::vector<ObjectId>{kOb}, /*writer=*/ts, ts));
  }
  ASSERT_EQ(store.VersionCount(kOb), 5u);  // t0 + four commits
  EXPECT_EQ(store.CollectGarbage(/*safe_ts=*/100), 4u);
  EXPECT_EQ(store.VersionCount(kOb), 1u);
  EXPECT_EQ(store.versions_pruned(), 4u);
  // The surviving version is the newest one; future readers still see it.
  EXPECT_EQ(store.Read(kOb, 100).writer, 4u);
}

TEST(MvccStoreTest, GcRespectsSafeTimestamp) {
  MvccStore store(1);
  const ObjectId kOb = 0;
  ASSERT_TRUE(store.CommitWrites(std::vector<ObjectId>{kOb}, /*writer=*/1, /*ts=*/2));
  ASSERT_TRUE(store.CommitWrites(std::vector<ObjectId>{kOb}, /*writer=*/2, /*ts=*/8));
  // safe_ts 5 may only drop versions older than the one visible at 5 (t0).
  EXPECT_EQ(store.CollectGarbage(/*safe_ts=*/5), 1u);
  EXPECT_EQ(store.VersionCount(kOb), 2u);
  EXPECT_EQ(store.Read(kOb, 5).writer, 1u);
  EXPECT_EQ(store.Read(kOb, 9).writer, 2u);
}

}  // namespace
}  // namespace bcc
