#include "common/format.h"

#include <gtest/gtest.h>

namespace bcc {
namespace {

TEST(StrFormatTest, BasicSubstitution) {
  EXPECT_EQ(StrFormat("txn %u read ob%u", 3u, 7u), "txn 3 read ob7");
  EXPECT_EQ(StrFormat("%s=%d", "x", -5), "x=-5");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
}

TEST(StrFormatTest, EmptyAndNoArgs) {
  EXPECT_EQ(StrFormat("plain"), "plain");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StrFormatTest, LongOutputAllocatesCorrectly) {
  const std::string big(500, 'a');
  const std::string out = StrFormat("<%s>", big.c_str());
  EXPECT_EQ(out.size(), 502u);
  EXPECT_EQ(out.front(), '<');
  EXPECT_EQ(out.back(), '>');
}

TEST(FormatBitUnitsTest, ScalesUnits) {
  EXPECT_EQ(FormatBitUnits(500), "500 bits");
  EXPECT_EQ(FormatBitUnits(2500), "2.50e3 bits");
  EXPECT_EQ(FormatBitUnits(3.18e6), "3.18e6 bits");
}

TEST(FormatEngTest, PrecisionControl) {
  EXPECT_EQ(FormatEng(1234.5678, 4), "1235");
  EXPECT_EQ(FormatEng(0.000123, 2), "0.00012");
  EXPECT_EQ(FormatEng(1e9, 3), "1e+09");
}

}  // namespace
}  // namespace bcc
