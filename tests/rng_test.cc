#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace bcc {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.NextU64() == b.NextU64();
  EXPECT_LT(equal, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.NextBounded(17), 17u);
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(100.0);
  const double mean = sum / n;
  EXPECT_NEAR(mean, 100.0, 2.0);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  for (int trial = 0; trial < 100; ++trial) {
    const auto sample = rng.SampleWithoutReplacement(20, 10);
    ASSERT_EQ(sample.size(), 10u);
    std::set<uint32_t> uniq(sample.begin(), sample.end());
    EXPECT_EQ(uniq.size(), 10u);
    EXPECT_LT(*std::max_element(sample.begin(), sample.end()), 20u);
  }
}

TEST(RngTest, SampleFullRangeIsPermutation) {
  Rng rng(23);
  const auto sample = rng.SampleWithoutReplacement(8, 8);
  std::set<uint32_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 8u);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(29);
  Rng b = a.Split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.NextU64() == b.NextU64();
  EXPECT_LT(equal, 2);
}

TEST(RngTest, SplitMix64KnownVector) {
  // Reference values from the SplitMix64 reference implementation.
  uint64_t state = 0;
  const uint64_t v1 = SplitMix64(&state);
  const uint64_t v2 = SplitMix64(&state);
  EXPECT_NE(v1, v2);
  EXPECT_EQ(state, 2 * 0x9e3779b97f4a7c15ull);
}

}  // namespace
}  // namespace bcc
