// Property suite for the parallel update engine (ISSUE 6 tentpole gate):
// across seeds and schemes, every concurrent execution must be provably
// serializable by the exact src/cc checkers, and folding the commit order
// into the broadcast-side manager must be bit-identical to the sequential
// ServerTxnManager oracle executing the same order.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cc/conflict_serializability.h"
#include "cc/update_consistency.h"
#include "cc/view_serializability.h"
#include "common/rng.h"
#include "server/exec/txn_processor.h"
#include "server/txn_manager.h"

namespace bcc {
namespace {

constexpr uint64_t kNumSeeds = 25;
const UpdateScheme kSchemes[] = {UpdateScheme::kTwoPhaseLocking, UpdateScheme::kOcc,
                                 UpdateScheme::kMvcc};

ServerTxn RandomTxn(Rng& rng, TxnId id, uint32_t num_objects) {
  ServerTxn t;
  t.id = id;
  const uint32_t num_reads = static_cast<uint32_t>(rng.NextInt(0, 3));
  const uint32_t num_writes = static_cast<uint32_t>(rng.NextInt(0, 2));
  t.read_set = rng.SampleWithoutReplacement(num_objects, num_reads);
  t.write_set = rng.SampleWithoutReplacement(num_objects, num_writes);
  return t;
}

/// The serialization-order history: every committed transaction's operations
/// run serially in commit_seq order. For MVCC this is the history whose
/// serializability the engine guarantees; for 2PL/OCC it is the witness
/// order of the interleaved history.
History BuildSerialHistory(const std::vector<CommittedServerTxn>& committed) {
  History h;
  for (const CommittedServerTxn& c : committed) {
    for (ObjectId ob : c.txn.read_set) h.AppendRead(c.txn.id, ob);
    for (ObjectId ob : c.txn.write_set) h.AppendWrite(c.txn.id, ob);
    h.AppendCommit(c.txn.id);
  }
  return h;
}

TEST(TxnProcessorPropertyTest, AllSchemesSerializableAndBitIdenticalToOracle) {
  constexpr uint32_t kNumObjects = 12;
  constexpr uint32_t kBatches = 3;
  constexpr uint32_t kTxnsPerBatch = 8;

  for (UpdateScheme scheme : kSchemes) {
    for (uint64_t seed = 0; seed < kNumSeeds; ++seed) {
      SCOPED_TRACE(std::string(UpdateSchemeName(scheme)) + " seed " + std::to_string(seed));
      Rng rng(seed * 7919 + static_cast<uint64_t>(scheme));
      TxnProcessor proc(kNumObjects, scheme, /*num_workers=*/4);
      ServerTxnManager folded(kNumObjects);  // cycle-fused ApplyCommitBatch path
      TxnManagerOptions oracle_options;
      oracle_options.batch_commit_maintenance = false;
      ServerTxnManager oracle(kNumObjects, oracle_options);

      std::vector<CommittedServerTxn> all;
      TxnId next_id = 1;
      for (uint32_t batch = 0; batch < kBatches; ++batch) {
        std::vector<ServerTxn> txns;
        for (uint32_t i = 0; i < kTxnsPerBatch; ++i) {
          txns.push_back(RandomTxn(rng, next_id++, kNumObjects));
        }
        const auto committed = proc.ExecuteBatch(txns);
        ASSERT_EQ(committed.size(), txns.size());
        const Cycle cycle = batch + 1;
        FoldIntoManager(committed, folded, cycle);
        for (const CommittedServerTxn& c : committed) oracle.ExecuteAndCommit(c.txn, cycle);
        all.insert(all.end(), committed.begin(), committed.end());
      }

      // Exact oracle: every read observation matches the serial replay of
      // the commit order (view equivalence to that serial execution).
      const Status verdict = VerifySerializable(kNumObjects, all);
      ASSERT_TRUE(verdict.ok()) << verdict.ToString();

      // The real interleaving (from per-operation sequence numbers) must be
      // conflict serializable for the single-version schemes.
      if (scheme != UpdateScheme::kMvcc) {
        const History interleaved = BuildInterleavedHistory(all);
        ASSERT_TRUE(interleaved.Validate().ok());
        ASSERT_TRUE(IsConflictSerializable(interleaved));
      }

      // F-Matrix, MC vector, and store must be bit-identical to the
      // sequential manager fed the same committed order.
      ASSERT_TRUE(folded.f_matrix() == oracle.f_matrix());
      ASSERT_TRUE(folded.mc_vector() == oracle.mc_vector());
      ASSERT_EQ(folded.store().committed(), oracle.store().committed());
      ASSERT_EQ(folded.num_committed(), kBatches * kTxnsPerBatch);
    }
  }
}

// Small configurations stay under kMaxExactViewTxns committed updates, so
// the exponential checkers (view serializability + Theorem 3 legality) can
// vet the histories exactly.
TEST(TxnProcessorPropertyTest, SmallHistoriesPassExactViewAndLegalityCheckers) {
  constexpr uint32_t kNumObjects = 6;
  constexpr uint32_t kNumTxns = 7;

  for (UpdateScheme scheme : kSchemes) {
    for (uint64_t seed = 0; seed < kNumSeeds; ++seed) {
      SCOPED_TRACE(std::string(UpdateSchemeName(scheme)) + " seed " + std::to_string(seed));
      Rng rng(seed * 104729 + static_cast<uint64_t>(scheme));
      TxnProcessor proc(kNumObjects, scheme, /*num_workers=*/4);
      std::vector<ServerTxn> txns;
      for (TxnId id = 1; id <= kNumTxns; ++id) {
        txns.push_back(RandomTxn(rng, id, kNumObjects));
      }
      const auto committed = proc.ExecuteBatch(txns);
      ASSERT_EQ(committed.size(), txns.size());

      const History history = scheme == UpdateScheme::kMvcc ? BuildSerialHistory(committed)
                                                            : BuildInterleavedHistory(committed);
      ASSERT_TRUE(history.Validate().ok());
      ASSERT_TRUE(history.ValidateAppendixAForm().ok());

      const auto view = IsViewSerializable(history);
      ASSERT_TRUE(view.ok()) << view.status().ToString();
      ASSERT_TRUE(*view);

      const auto legality = CheckLegality(history);
      ASSERT_TRUE(legality.ok()) << legality.status().ToString();
      ASSERT_TRUE(legality->legal) << legality->reason;
    }
  }
}

}  // namespace
}  // namespace bcc
