// Property suite for the parallel update engine (ISSUE 6 tentpole gate):
// across seeds and schemes, every concurrent execution must be provably
// serializable by the exact src/cc checkers, and folding the commit order
// into the broadcast-side manager must be bit-identical to the sequential
// ServerTxnManager oracle executing the same order.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cc/conflict_serializability.h"
#include "cc/update_consistency.h"
#include "cc/view_serializability.h"
#include "common/rng.h"
#include "server/exec/txn_processor.h"
#include "server/mc_overlay.h"
#include "server/txn_manager.h"
#include "server/validator.h"

namespace bcc {
namespace {

constexpr uint64_t kNumSeeds = 25;
const UpdateScheme kSchemes[] = {UpdateScheme::kTwoPhaseLocking, UpdateScheme::kOcc,
                                 UpdateScheme::kMvcc};

ServerTxn RandomTxn(Rng& rng, TxnId id, uint32_t num_objects) {
  ServerTxn t;
  t.id = id;
  const uint32_t num_reads = static_cast<uint32_t>(rng.NextInt(0, 3));
  const uint32_t num_writes = static_cast<uint32_t>(rng.NextInt(0, 2));
  t.read_set = rng.SampleWithoutReplacement(num_objects, num_reads);
  t.write_set = rng.SampleWithoutReplacement(num_objects, num_writes);
  return t;
}

/// The serialization-order history: every committed transaction's operations
/// run serially in commit_seq order. For MVCC this is the history whose
/// serializability the engine guarantees; for 2PL/OCC it is the witness
/// order of the interleaved history.
History BuildSerialHistory(const std::vector<CommittedServerTxn>& committed) {
  History h;
  for (const CommittedServerTxn& c : committed) {
    for (ObjectId ob : c.txn.read_set) h.AppendRead(c.txn.id, ob);
    for (ObjectId ob : c.txn.write_set) h.AppendWrite(c.txn.id, ob);
    h.AppendCommit(c.txn.id);
  }
  return h;
}

TEST(TxnProcessorPropertyTest, AllSchemesSerializableAndBitIdenticalToOracle) {
  constexpr uint32_t kNumObjects = 12;
  constexpr uint32_t kBatches = 3;
  constexpr uint32_t kTxnsPerBatch = 8;

  for (UpdateScheme scheme : kSchemes) {
    for (uint64_t seed = 0; seed < kNumSeeds; ++seed) {
      SCOPED_TRACE(std::string(UpdateSchemeName(scheme)) + " seed " + std::to_string(seed));
      Rng rng(seed * 7919 + static_cast<uint64_t>(scheme));
      TxnProcessor proc(kNumObjects, scheme, /*num_workers=*/4);
      ServerTxnManager folded(kNumObjects);  // cycle-fused ApplyCommitBatch path
      TxnManagerOptions oracle_options;
      oracle_options.batch_commit_maintenance = false;
      ServerTxnManager oracle(kNumObjects, oracle_options);

      std::vector<CommittedServerTxn> all;
      TxnId next_id = 1;
      for (uint32_t batch = 0; batch < kBatches; ++batch) {
        std::vector<ServerTxn> txns;
        for (uint32_t i = 0; i < kTxnsPerBatch; ++i) {
          txns.push_back(RandomTxn(rng, next_id++, kNumObjects));
        }
        const auto committed = proc.ExecuteBatch(txns);
        ASSERT_EQ(committed.size(), txns.size());
        const Cycle cycle = batch + 1;
        FoldIntoManager(committed, folded, cycle);
        for (const CommittedServerTxn& c : committed) oracle.ExecuteAndCommit(c.txn, cycle);
        all.insert(all.end(), committed.begin(), committed.end());
      }

      // Exact oracle: every read observation matches the serial replay of
      // the commit order (view equivalence to that serial execution).
      const Status verdict = VerifySerializable(kNumObjects, all);
      ASSERT_TRUE(verdict.ok()) << verdict.ToString();

      // The real interleaving (from per-operation sequence numbers) must be
      // conflict serializable for the single-version schemes.
      if (scheme != UpdateScheme::kMvcc) {
        const History interleaved = BuildInterleavedHistory(all);
        ASSERT_TRUE(interleaved.Validate().ok());
        ASSERT_TRUE(IsConflictSerializable(interleaved));
      }

      // F-Matrix, MC vector, and store must be bit-identical to the
      // sequential manager fed the same committed order.
      ASSERT_TRUE(folded.f_matrix() == oracle.f_matrix());
      ASSERT_TRUE(folded.mc_vector() == oracle.mc_vector());
      ASSERT_EQ(folded.store().committed(), oracle.store().committed());
      ASSERT_EQ(folded.num_committed(), kBatches * kTxnsPerBatch);
    }
  }
}

// Small configurations stay under kMaxExactViewTxns committed updates, so
// the exponential checkers (view serializability + Theorem 3 legality) can
// vet the histories exactly.
TEST(TxnProcessorPropertyTest, SmallHistoriesPassExactViewAndLegalityCheckers) {
  constexpr uint32_t kNumObjects = 6;
  constexpr uint32_t kNumTxns = 7;

  for (UpdateScheme scheme : kSchemes) {
    for (uint64_t seed = 0; seed < kNumSeeds; ++seed) {
      SCOPED_TRACE(std::string(UpdateSchemeName(scheme)) + " seed " + std::to_string(seed));
      Rng rng(seed * 104729 + static_cast<uint64_t>(scheme));
      TxnProcessor proc(kNumObjects, scheme, /*num_workers=*/4);
      std::vector<ServerTxn> txns;
      for (TxnId id = 1; id <= kNumTxns; ++id) {
        txns.push_back(RandomTxn(rng, id, kNumObjects));
      }
      const auto committed = proc.ExecuteBatch(txns);
      ASSERT_EQ(committed.size(), txns.size());

      const History history = scheme == UpdateScheme::kMvcc ? BuildSerialHistory(committed)
                                                            : BuildInterleavedHistory(committed);
      ASSERT_TRUE(history.Validate().ok());
      ASSERT_TRUE(history.ValidateAppendixAForm().ok());

      const auto view = IsViewSerializable(history);
      ASSERT_TRUE(view.ok()) << view.status().ToString();
      ASSERT_TRUE(*view);

      const auto legality = CheckLegality(history);
      ASSERT_TRUE(legality.ok()) << legality.status().ToString();
      ASSERT_TRUE(legality->legal) << legality->reason;
    }
  }
}

// Mixed read/update clients through the mid-cycle MC-vector protocol: per
// cycle, server transactions and uplink requests arrive in a random event
// order. Server transactions stage their MC effects into the overlay; each
// uplink validates against the merged (manager + overlay) view and, if
// accepted, joins the serial prefix of the fold. Two oracles vet the run:
//
//  * Decision oracle: an eager sequential manager executes the same event
//    order directly (server commits apply immediately, uplinks validate
//    through a direct-mode validator). Every uplink's commit/abort decision
//    must match — the merged overlay view is exactly the eager MC vector.
//  * State oracle: a sequential manager fed the fold order (accepted uplinks
//    in acceptance order, then the pooled batch in serialization order) must
//    be bit-identical to the folded manager in F-Matrix, MC vector, store.
TEST(TxnProcessorPropertyTest, MixedClientsMatchDecisionAndStateOracles) {
  constexpr uint32_t kNumObjects = 10;
  constexpr uint32_t kCycles = 4;
  constexpr uint32_t kServerPerCycle = 5;
  constexpr uint32_t kUplinksPerCycle = 4;
  constexpr TxnId kUplinkIdBase = 1u << 21;

  for (UpdateScheme scheme : kSchemes) {
    for (uint64_t seed = 0; seed < kNumSeeds; ++seed) {
      SCOPED_TRACE(std::string(UpdateSchemeName(scheme)) + " seed " + std::to_string(seed));
      Rng rng(seed * 6271 + static_cast<uint64_t>(scheme));
      TxnProcessor proc(kNumObjects, scheme, /*num_workers=*/4);
      ServerTxnManager folded(kNumObjects);
      TxnManagerOptions eager_options;
      eager_options.batch_commit_maintenance = false;
      ServerTxnManager eager(kNumObjects, eager_options);
      ServerTxnManager oracle(kNumObjects, eager_options);

      McOverlay overlay(kNumObjects);
      std::vector<ServerTxn> pending_uplinks;
      UpdateValidator staged_validator(&folded);
      staged_validator.AttachStagedMode(
          &overlay, [&pending_uplinks](ServerTxn&& txn) { pending_uplinks.push_back(std::move(txn)); });
      UpdateValidator direct_validator(&eager);

      std::vector<CommittedServerTxn> all;
      std::vector<ServerTxn> pending_server;
      TxnId next_server_id = 1;
      TxnId next_uplink_id = kUplinkIdBase;
      uint64_t accepts = 0, rejects = 0;

      for (Cycle cycle = 1; cycle <= kCycles; ++cycle) {
        uint32_t servers_left = kServerPerCycle;
        uint32_t uplinks_left = kUplinksPerCycle;
        while (servers_left + uplinks_left > 0) {
          const bool is_uplink =
              rng.NextInt(1, servers_left + uplinks_left) <= static_cast<int64_t>(uplinks_left);
          if (!is_uplink) {
            --servers_left;
            const ServerTxn txn = RandomTxn(rng, next_server_id++, kNumObjects);
            overlay.Stage(txn.write_set, cycle);
            pending_server.push_back(txn);
            eager.ExecuteAndCommit(txn, cycle);
            continue;
          }
          --uplinks_left;
          ClientUpdateRequest req;
          req.id = next_uplink_id++;
          // Reads observe the state at the beginning of the read cycle;
          // sometimes a cycle old, so overwrites force genuine rejections.
          const Cycle read_cycle =
              cycle > 1 ? cycle - static_cast<Cycle>(rng.NextInt(0, 1)) : cycle;
          for (ObjectId ob :
               rng.SampleWithoutReplacement(kNumObjects, static_cast<uint32_t>(rng.NextInt(1, 3)))) {
            req.reads.push_back({ob, read_cycle});
          }
          req.writes = rng.SampleWithoutReplacement(kNumObjects, 2);
          const bool staged_ok = staged_validator.ValidateAndCommit(req, cycle).ok();
          const bool oracle_ok = direct_validator.ValidateAndCommit(req, cycle).ok();
          ASSERT_EQ(staged_ok, oracle_ok)
              << "uplink " << req.id << " decision diverged at cycle " << cycle;
          staged_ok ? ++accepts : ++rejects;
        }

        // The fold: accepted uplinks first (serial, acceptance order), then
        // the pooled server batch; the state oracle replays the same order.
        const auto committed_uplinks = proc.ExecuteSerial(pending_uplinks);
        FoldIntoManager(committed_uplinks, folded, cycle);
        for (const CommittedServerTxn& c : committed_uplinks) oracle.ExecuteAndCommit(c.txn, cycle);
        all.insert(all.end(), committed_uplinks.begin(), committed_uplinks.end());
        pending_uplinks.clear();

        const auto committed_servers = proc.ExecuteBatch(pending_server);
        ASSERT_EQ(committed_servers.size(), pending_server.size());
        FoldIntoManager(committed_servers, folded, cycle);
        for (const CommittedServerTxn& c : committed_servers) oracle.ExecuteAndCommit(c.txn, cycle);
        all.insert(all.end(), committed_servers.begin(), committed_servers.end());
        pending_server.clear();
        overlay.Clear();
      }

      // The workload must exercise both outcomes across the seed sweep; any
      // individual seed needs at least one accept to make the fold real.
      ASSERT_GT(accepts, 0u);

      const Status verdict = VerifySerializable(kNumObjects, all);
      ASSERT_TRUE(verdict.ok()) << verdict.ToString();

      ASSERT_TRUE(folded.f_matrix() == oracle.f_matrix());
      ASSERT_TRUE(folded.mc_vector() == oracle.mc_vector());
      ASSERT_EQ(folded.store().committed(), oracle.store().committed());
      ASSERT_EQ(folded.num_committed(), kCycles * kServerPerCycle + accepts);
      // The eager decision-oracle manager saw the same commits per cycle (in
      // event order), so its MC vector agrees even though its F-Matrix order
      // differs within a cycle.
      ASSERT_TRUE(folded.mc_vector() == eager.mc_vector());
      ASSERT_EQ(eager.num_committed(), folded.num_committed());
    }
  }
}

// Pooled-apply fold: ApplyCommitBatch sharded across the pool's workers by
// column partition must be bit-identical to the serial fold for every batch.
TEST(TxnProcessorPropertyTest, ParallelFoldBitIdenticalToSerialFold) {
  constexpr uint32_t kNumObjects = 16;
  constexpr uint32_t kBatches = 6;
  constexpr uint32_t kTxnsPerBatch = 9;

  for (uint64_t seed = 0; seed < kNumSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed * 31337 + 17);
    TxnProcessor proc(kNumObjects, UpdateScheme::kOcc, /*num_workers=*/4);
    ServerTxnManager parallel_mgr(kNumObjects);
    ServerTxnManager serial_mgr(kNumObjects);
    parallel_mgr.SetParallelFold(
        [&proc](uint32_t shards, const std::function<void(uint32_t)>& body) {
          proc.RunShards(shards, body);
        },
        /*num_shards=*/4);

    TxnId next_id = 1;
    for (uint32_t batch = 0; batch < kBatches; ++batch) {
      std::vector<ServerTxn> txns;
      for (uint32_t i = 0; i < kTxnsPerBatch; ++i) {
        txns.push_back(RandomTxn(rng, next_id++, kNumObjects));
      }
      const auto committed = proc.ExecuteBatch(txns);
      const Cycle cycle = batch + 1;
      FoldIntoManager(committed, parallel_mgr, cycle);
      FoldIntoManager(committed, serial_mgr, cycle);
    }

    ASSERT_TRUE(parallel_mgr.f_matrix() == serial_mgr.f_matrix());
    ASSERT_TRUE(parallel_mgr.mc_vector() == serial_mgr.mc_vector());
    ASSERT_EQ(parallel_mgr.store().committed(), serial_mgr.store().committed());
    ASSERT_EQ(parallel_mgr.num_committed(), serial_mgr.num_committed());
  }
}

}  // namespace
}  // namespace bcc
