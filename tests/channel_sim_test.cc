// Simulation-level tests for the lossy broadcast channel: lossless
// bit-exactness with the direct in-process handoff, determinism of lossy
// runs, loss-driven stalls/desyncs/resyncs, the oracle safety sweep (loss
// may add stalls and aborts, never false acceptance), and lossy parity
// between the DES and the concurrent engine.

#include <gtest/gtest.h>

#include <vector>

#include "sim/broadcast_sim.h"
#include "sim/concurrent_sim.h"

namespace bcc {
namespace {

SimConfig SmallChannelConfig() {
  SimConfig config;
  config.algorithm = Algorithm::kFMatrix;
  config.num_objects = 12;
  config.object_size_bits = 64;
  config.client_txn_length = 3;
  config.server_txn_length = 3;
  config.server_txn_interval = 2500;
  config.mean_inter_op_delay = 600;
  config.mean_inter_txn_delay = 1200;
  config.num_client_txns = 100000;  // cutoff comes from stop_after_cycles
  config.warmup_txns = 1;
  config.timestamp_bits = 8;
  config.stop_after_cycles = 40;
  config.channel_broadcast = true;
  config.channel_frame_bits = 256;
  return config;
}

// ---------------------------------------------------------------------------
// Lossless bit-exactness
// ---------------------------------------------------------------------------

TEST(ChannelLosslessTest, FullModeChannelIsBitExactWithDirectHandoff) {
  for (uint64_t seed : {3u, 17u, 4242u}) {
    SimConfig config = SmallChannelConfig();
    config.seed = seed;
    EXPECT_TRUE(CrossCheckLossless(config).ok()) << "seed " << seed;
  }
}

TEST(ChannelLosslessTest, DeltaModeChannelIsBitExactWithDirectHandoff) {
  for (uint64_t seed : {5u, 29u, 999u}) {
    SimConfig config = SmallChannelConfig();
    config.seed = seed;
    config.delta_broadcast = true;
    config.delta_refresh_period = 6;
    EXPECT_TRUE(CrossCheckLossless(config).ok()) << "seed " << seed;
  }
}

TEST(ChannelLosslessTest, CrossCheckRequiresCycleCutoff) {
  SimConfig config = SmallChannelConfig();
  config.stop_after_cycles = 0;
  EXPECT_FALSE(CrossCheckLossless(config).ok());
}

TEST(ChannelLosslessTest, MultiClientLosslessChannelStaysBitExact) {
  SimConfig config = SmallChannelConfig();
  config.num_clients = 4;
  EXPECT_TRUE(CrossCheckLossless(config).ok());
}

// ---------------------------------------------------------------------------
// Lossy determinism
// ---------------------------------------------------------------------------

TEST(ChannelLossyTest, LossyRunsAreDeterministicGivenTheSeed) {
  SimConfig config = SmallChannelConfig();
  config.record_decisions = true;
  config.num_clients = 2;
  config.channel_loss_rate = 0.1;
  config.channel_corrupt_rate = 0.05;
  config.channel_truncate_rate = 0.02;
  config.channel_burst = true;

  BroadcastSim a(config);
  const auto sa = a.Run();
  ASSERT_TRUE(sa.ok()) << sa.status().ToString();
  BroadcastSim b(config);
  const auto sb = b.Run();
  ASSERT_TRUE(sb.ok()) << sb.status().ToString();

  EXPECT_GT(sa->channel.frames_dropped, 0u);
  EXPECT_TRUE(sa->channel == sb->channel);
  EXPECT_EQ(sa->total_restarts, sb->total_restarts);
  EXPECT_EQ(sa->total_txns, sb->total_txns);
  ASSERT_EQ(a.decisions().size(), b.decisions().size());
  for (size_t c = 0; c < a.decisions().size(); ++c) {
    ASSERT_EQ(a.decisions()[c].size(), b.decisions()[c].size()) << "client " << c;
    for (size_t i = 0; i < a.decisions()[c].size(); ++i) {
      EXPECT_TRUE(a.decisions()[c][i] == b.decisions()[c][i]) << "client " << c << " txn " << i;
    }
  }
}

TEST(ChannelLossyTest, StatsInvariantsHoldUnderHeavyFaults) {
  SimConfig config = SmallChannelConfig();
  config.channel_loss_rate = 0.2;
  config.channel_corrupt_rate = 0.2;
  config.channel_truncate_rate = 0.1;
  BroadcastSim sim(config);
  const auto summary = sim.Run();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  const ChannelStats& ch = summary->channel;
  EXPECT_GT(ch.frames_sent, 0u);
  EXPECT_EQ(ch.frames_sent, ch.frames_dropped + ch.frames_delivered);
  // Damage is either caught by CRC/framing or delivered-and-counted.
  EXPECT_EQ(ch.frames_corrupted + ch.frames_truncated,
            ch.frames_rejected + ch.frames_delivered_corrupt);
  EXPECT_GT(ch.frames_rejected, 0u);
  EXPECT_GT(ch.stalls, 0u);
}

TEST(ChannelLossyTest, DeltaModeLossDrivesDesyncsAndResyncs) {
  SimConfig config = SmallChannelConfig();
  config.delta_broadcast = true;
  config.delta_refresh_period = 4;
  config.channel_loss_rate = 0.15;
  config.stop_after_cycles = 80;
  BroadcastSim sim(config);
  const auto summary = sim.Run();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  const ChannelStats& ch = summary->channel;
  EXPECT_GT(ch.control_losses, 0u);
  EXPECT_GT(ch.tracker_desyncs, 0u) << "a lost delta must desync the tracker";
  EXPECT_GT(ch.resyncs, 0u) << "the next refresh must resync it";
  EXPECT_GT(ch.stalls, 0u);
  // Desynced reads stall through the delta-stall path too.
  EXPECT_GT(summary->delta_stall_waits, 0u);
}

// ---------------------------------------------------------------------------
// Safety sweep: loss may only add stalls/aborts, never false acceptance
// ---------------------------------------------------------------------------

TEST(ChannelSafetyTest, NoOracleRejectedCommitUnderAnyFaultSchedule) {
  // >= 20 seeds spread over every loss rate, burst setting, stamp width and
  // control mode from the issue's acceptance sweep. VerifyOracle re-checks
  // every committed read against the reads-from relation of the paper-
  // semantics history and runs APPROX over it: a client that validated
  // against stale control information would surface here.
  const double losses[] = {0.01, 0.05, 0.2};
  const unsigned ts_bits[] = {2, 3, 8};
  uint64_t seed = 1000;
  for (const bool delta_mode : {false, true}) {
    for (const double loss : losses) {
      for (const bool burst : {false, true}) {
        for (const unsigned ts : ts_bits) {
          SimConfig config = SmallChannelConfig();
          config.seed = ++seed;
          config.timestamp_bits = ts;
          config.channel_loss_rate = loss;
          config.channel_corrupt_rate = loss / 2;
          config.channel_burst = burst;
          config.record_history = true;
          config.stop_after_cycles = 30;
          if (delta_mode) {
            config.delta_broadcast = true;
            config.delta_refresh_period = 3;  // keep refreshes inside tiny windows
          }
          BroadcastSim sim(config);
          const auto summary = sim.Run();
          ASSERT_TRUE(summary.ok()) << summary.status().ToString();
          const Status oracle = sim.VerifyOracle();
          EXPECT_TRUE(oracle.ok())
              << "seed " << config.seed << " loss " << loss << " burst " << burst << " ts " << ts
              << " delta " << delta_mode << ": " << oracle.ToString();
          EXPECT_EQ(summary->channel.frames_sent,
                    summary->channel.frames_dropped + summary->channel.frames_delivered);
        }
      }
    }
  }
  EXPECT_GE(seed - 1000, 20u);
}

// ---------------------------------------------------------------------------
// Concurrent engine under the channel
// ---------------------------------------------------------------------------

TEST(ConcurrentSimLossyTest, LosslessChannelMatchesDirectPathAcrossEngines) {
  SimConfig config = SmallChannelConfig();
  config.num_clients = 3;
  EXPECT_TRUE(CrossCheckEngines(config).ok());
}

TEST(ConcurrentSimLossyTest, LossyRunMatchesSequentialEngine) {
  for (const bool burst : {false, true}) {
    SimConfig config = SmallChannelConfig();
    config.num_clients = 3;
    config.channel_loss_rate = 0.1;
    config.channel_corrupt_rate = 0.05;
    config.channel_burst = burst;
    EXPECT_TRUE(CrossCheckEngines(config).ok()) << "burst " << burst;
  }
}

TEST(ConcurrentSimLossyTest, ChannelStatsMatchSequentialEngine) {
  SimConfig config = SmallChannelConfig();
  config.num_clients = 2;
  config.num_client_txns = 100000;
  config.channel_loss_rate = 0.15;
  config.channel_truncate_rate = 0.05;
  config.record_decisions = true;

  BroadcastSim des(config);
  const auto des_summary = des.Run();
  ASSERT_TRUE(des_summary.ok()) << des_summary.status().ToString();
  ConcurrentSim conc(config);
  const auto conc_summary = conc.Run();
  ASSERT_TRUE(conc_summary.ok()) << conc_summary.status().ToString();

  EXPECT_GT(conc_summary->channel.frames_dropped, 0u);
  EXPECT_TRUE(des_summary->channel == conc_summary->channel)
      << "per-client fault streams must be engine-independent";
}

TEST(ConcurrentSimLossyTest, RejectsChannelWithDeltaBroadcast) {
  SimConfig config = SmallChannelConfig();
  config.delta_broadcast = true;
  config.delta_refresh_period = 4;
  ConcurrentSim sim(config);
  EXPECT_FALSE(sim.Run().ok());
}

}  // namespace
}  // namespace bcc
