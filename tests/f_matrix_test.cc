#include "matrix/f_matrix.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "history/history.h"
#include "matrix/kernels.h"

namespace bcc {
namespace {

TEST(KernelTest, ReadConditionScanReturnsFirstFailureIndex) {
  // The scan early-exits: with several failing reads it must report the
  // first one in record order, and a passing prefix must not mask it.
  const std::vector<Cycle> column = {0, 9, 9, 0};
  const std::vector<ReadRecord> reads = {{0, 5}, {1, 5}, {2, 5}, {3, 5}};
  EXPECT_EQ(KernelReadConditionScan(column.data(), reads.data(), reads.size()), 1u);
  EXPECT_EQ(KernelReadConditionScan(column.data(), reads.data() + 2, 2), 0u);
}

TEST(KernelTest, ReadConditionScanPassesCleanColumn) {
  const std::vector<Cycle> column = {1, 2, 3};
  const std::vector<ReadRecord> reads = {{0, 5}, {2, 4}};
  EXPECT_EQ(KernelReadConditionScan(column.data(), reads.data(), reads.size()),
            kReadConditionPass);
  EXPECT_EQ(KernelReadConditionScan(column.data(), reads.data(), 0), kReadConditionPass);
}

TEST(KernelTest, ColumnDiffIndicesFindsEveryMismatch) {
  const std::vector<Cycle> a = {1, 2, 3, 4, 5};
  const std::vector<Cycle> b = {1, 9, 3, 9, 5};
  std::vector<ObjectId> out(a.size());
  const uint32_t count =
      KernelColumnDiffIndices(a.data(), b.data(), static_cast<uint32_t>(a.size()), out.data());
  ASSERT_EQ(count, 2u);
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[1], 3u);
}

TEST(FMatrixTest, StartsAllZero) {
  FMatrix c(4);
  for (ObjectId i = 0; i < 4; ++i) {
    for (ObjectId j = 0; j < 4; ++j) EXPECT_EQ(c.At(i, j), 0u);
  }
}

TEST(FMatrixTest, PaperExample4) {
  // w1(ob1) w1(ob2) c1  r2(ob1) w2(ob1) c2  r3(ob2) w3(ob2) c3, commit of
  // t_i in cycle i. Paper: C(1,1)=2, C(2,2)=3, C(1,2)=1, C(2,1)=1.
  // (Objects are 0-indexed here: ob1 -> 0, ob2 -> 1.)
  FMatrix c(2);
  const ObjectId ob1 = 0, ob2 = 1;
  c.ApplyCommit(/*read_set=*/{}, /*write_set=*/std::vector<ObjectId>{ob1, ob2}, /*cycle=*/1);
  c.ApplyCommit(std::vector<ObjectId>{ob1}, std::vector<ObjectId>{ob1}, 2);
  c.ApplyCommit(std::vector<ObjectId>{ob2}, std::vector<ObjectId>{ob2}, 3);
  EXPECT_EQ(c.At(ob1, ob1), 2u);
  EXPECT_EQ(c.At(ob2, ob2), 3u);
  EXPECT_EQ(c.At(ob1, ob2), 1u);
  EXPECT_EQ(c.At(ob2, ob1), 1u);
}

TEST(FMatrixTest, WriterWithEmptyReadSetResetsDependencies) {
  FMatrix c(3);
  c.ApplyCommit({}, std::vector<ObjectId>{0, 1}, 1);
  EXPECT_EQ(c.At(0, 1), 1u);
  // Blind write to ob1 at cycle 5: new value of ob1 depends on nothing.
  c.ApplyCommit({}, std::vector<ObjectId>{1}, 5);
  EXPECT_EQ(c.At(1, 1), 5u);
  EXPECT_EQ(c.At(0, 1), 0u);  // dependency on ob0 gone
  EXPECT_EQ(c.At(0, 0), 1u);  // ob0's column untouched
}

TEST(FMatrixTest, DependenciesPropagateThroughReads) {
  FMatrix c(3);
  c.ApplyCommit({}, std::vector<ObjectId>{0}, 1);  // t1 writes ob0
  // t2 reads ob0, writes ob1 at cycle 3: ob1 now depends on ob0's writer.
  c.ApplyCommit(std::vector<ObjectId>{0}, std::vector<ObjectId>{1}, 3);
  EXPECT_EQ(c.At(0, 1), 1u);
  EXPECT_EQ(c.At(1, 1), 3u);
  // t3 reads ob1, writes ob2 at cycle 7: transitive dependency on ob0.
  c.ApplyCommit(std::vector<ObjectId>{1}, std::vector<ObjectId>{2}, 7);
  EXPECT_EQ(c.At(0, 2), 1u);
  EXPECT_EQ(c.At(1, 2), 3u);
  EXPECT_EQ(c.At(2, 2), 7u);
}

TEST(FMatrixTest, ReadOnlyCommitChangesNothing) {
  FMatrix c(2);
  c.ApplyCommit({}, std::vector<ObjectId>{0}, 1);
  const FMatrix before = c;
  c.ApplyCommit(std::vector<ObjectId>{0, 1}, {}, 2);
  EXPECT_TRUE(before == c);
}

TEST(FMatrixTest, ColumnSpanMatchesEntries) {
  FMatrix c(3);
  c.ApplyCommit(std::vector<ObjectId>{1}, std::vector<ObjectId>{0, 2}, 4);
  const auto col = c.Column(2);
  ASSERT_EQ(col.size(), 3u);
  for (ObjectId i = 0; i < 3; ++i) EXPECT_EQ(col[i], c.At(i, 2));
}

TEST(FMatrixTest, ReadConditionUsesColumnOfTargetObject) {
  FMatrix c(2);
  c.ApplyCommit({}, std::vector<ObjectId>{0, 1}, 3);  // both written in cycle 3
  // Client read ob0 in cycle 4 (after the write committed): reading ob1 now
  // is fine (C(0,1)=3 < 4).
  const std::vector<ReadRecord> reads_ok{{0, 4}};
  EXPECT_TRUE(c.ReadCondition(reads_ok, 1));
  // Client read ob0 in cycle 2 (before): C(0,1)=3 >= 2 -> reject.
  const std::vector<ReadRecord> reads_bad{{0, 2}};
  EXPECT_FALSE(c.ReadCondition(reads_bad, 1));
}

TEST(FMatrixTest, ReadConditionVacuousOnFirstRead) {
  FMatrix c(2);
  c.ApplyCommit({}, std::vector<ObjectId>{0, 1}, 9);
  EXPECT_TRUE(c.ReadCondition({}, 0));
}

TEST(FMatrixTest, SelfWriteSetsDiagonalAndCrossEntries) {
  FMatrix c(3);
  c.ApplyCommit(std::vector<ObjectId>{2}, std::vector<ObjectId>{0, 1}, 6);
  // Both written objects cross-depend at cycle 6.
  EXPECT_EQ(c.At(0, 0), 6u);
  EXPECT_EQ(c.At(1, 1), 6u);
  EXPECT_EQ(c.At(0, 1), 6u);
  EXPECT_EQ(c.At(1, 0), 6u);
  // Reading from ob2 (written by t0 at cycle 0) contributes nothing.
  EXPECT_EQ(c.At(2, 0), 0u);
}

TEST(FMatrixTest, DirtyTrackingRecordsExactlyWrittenColumns) {
  FMatrix c(5);
  c.EnableDirtyTracking();
  EXPECT_TRUE(c.dirty_tracking_enabled());
  EXPECT_TRUE(c.touched_columns().empty());

  c.ApplyCommit(std::vector<ObjectId>{0}, std::vector<ObjectId>{1, 3}, 2);
  c.ApplyCommit({}, std::vector<ObjectId>{3, 4}, 3);
  c.ApplyCommit(std::vector<ObjectId>{2}, {}, 4);  // read-only: no columns

  // Each touched column once, in first-touch order.
  const std::vector<ObjectId> expect = {1, 3, 4};
  EXPECT_EQ(std::vector<ObjectId>(c.touched_columns().begin(), c.touched_columns().end()),
            expect);

  EXPECT_EQ(c.TakeTouchedColumns(), expect);
  EXPECT_TRUE(c.touched_columns().empty());

  // The drain resets membership: the same columns register again.
  c.ApplyCommit({}, std::vector<ObjectId>{3}, 5);
  EXPECT_EQ(c.TakeTouchedColumns(), std::vector<ObjectId>{3});
}

TEST(FMatrixTest, DirtyTrackingCoversEveryChangedEntry) {
  // Soundness of the column-granular dirty list: every entry that differs
  // across a batch of commits lies in a recorded column.
  Rng rng(77);
  FMatrix c(8);
  c.EnableDirtyTracking();
  Cycle cycle = 1;
  for (int step = 0; step < 40; ++step, ++cycle) {
    FMatrix before = c;
    const uint32_t commits = static_cast<uint32_t>(rng.NextBounded(3));
    for (uint32_t t = 0; t < commits; ++t) {
      const auto reads = rng.SampleWithoutReplacement(8, static_cast<uint32_t>(rng.NextBounded(3)));
      const auto writes =
          rng.SampleWithoutReplacement(8, 1 + static_cast<uint32_t>(rng.NextBounded(3)));
      c.ApplyCommit(reads, writes, cycle);
    }
    const std::vector<ObjectId> touched = c.TakeTouchedColumns();
    for (ObjectId j = 0; j < 8; ++j) {
      bool col_changed = false;
      for (ObjectId i = 0; i < 8; ++i) col_changed |= before.At(i, j) != c.At(i, j);
      if (col_changed) {
        EXPECT_TRUE(std::find(touched.begin(), touched.end(), j) != touched.end())
            << "changed column " << j << " missing from the dirty list at step " << step;
      }
    }
  }
}

// Theorem 2: incremental maintenance equals the from-definition matrix
// after every commit, on randomized serial update workloads.
struct Theorem2Case {
  uint32_t num_objects;
  uint32_t num_txns;
  uint32_t max_ops;
  uint64_t seed;
};

class FMatrixTheorem2Test : public ::testing::TestWithParam<Theorem2Case> {};

TEST_P(FMatrixTheorem2Test, IncrementalMatchesDefinition) {
  const Theorem2Case& tc = GetParam();
  Rng rng(tc.seed);
  FMatrix incremental(tc.num_objects);
  History history;
  std::unordered_map<TxnId, Cycle> commit_cycles;
  Cycle cycle = 1;
  for (TxnId t = 1; t <= tc.num_txns; ++t) {
    const uint32_t nr = static_cast<uint32_t>(
        rng.NextBounded(std::min(tc.max_ops, tc.num_objects) + 1));
    const uint32_t nw = 1 + static_cast<uint32_t>(
                                rng.NextBounded(std::min(tc.max_ops, tc.num_objects)));
    const auto reads = rng.SampleWithoutReplacement(tc.num_objects, nr);
    const auto writes = rng.SampleWithoutReplacement(tc.num_objects, nw);
    for (ObjectId ob : reads) history.AppendRead(t, ob);
    for (ObjectId ob : writes) history.AppendWrite(t, ob);
    history.AppendCommit(t);
    commit_cycles[t] = cycle;

    incremental.ApplyCommit(reads, writes, cycle);
    const FMatrix from_def = FMatrixFromDefinition(history, commit_cycles, tc.num_objects);
    ASSERT_TRUE(incremental == from_def)
        << "diverged after txn " << t << " in " << history.ToString();

    if (rng.NextBernoulli(0.5)) ++cycle;  // several commits may share a cycle
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, FMatrixTheorem2Test,
    ::testing::Values(Theorem2Case{3, 12, 2, 1}, Theorem2Case{5, 20, 3, 2},
                      Theorem2Case{8, 30, 4, 3}, Theorem2Case{2, 15, 2, 4},
                      Theorem2Case{10, 25, 5, 5}, Theorem2Case{6, 40, 3, 6}),
    [](const ::testing::TestParamInfo<Theorem2Case>& info) {
      return "n" + std::to_string(info.param.num_objects) + "_t" +
             std::to_string(info.param.num_txns) + "_s" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace bcc
