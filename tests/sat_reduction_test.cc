// Appendix B (Theorem 5): SAT reduces to history legality with serial
// updates. The headline property test checks, against brute-force SAT,
// that IsLegal(reduction.history) == satisfiable(psi) on random formulas.

#include "cc/sat_reduction.h"

#include <gtest/gtest.h>

#include "cc/update_consistency.h"
#include "cc/view_serializability.h"

namespace bcc {
namespace {

CnfFormula Parse3Sat(std::initializer_list<std::initializer_list<int>> clauses,
                     uint32_t num_vars) {
  // Positive int v = variable v-1; negative = negated.
  CnfFormula f;
  f.num_vars = num_vars;
  for (const auto& clause : clauses) {
    CnfClause c;
    for (int lit : clause) {
      c.literals.push_back({static_cast<uint32_t>(std::abs(lit)) - 1, lit < 0});
    }
    f.clauses.push_back(std::move(c));
  }
  return f;
}

TEST(CnfTest, EvaluateAndMixed) {
  const CnfFormula f = Parse3Sat({{1, -2}, {2, 3}}, 3);
  EXPECT_TRUE(f.clauses[0].IsMixed());
  EXPECT_FALSE(f.clauses[1].IsMixed());
  EXPECT_TRUE(f.Evaluate({true, true, false}));
  EXPECT_FALSE(f.Evaluate({true, false, false}));
  EXPECT_EQ(f.NumOccurrences(), 4u);
}

TEST(CnfTest, BruteForceFindsWitness) {
  const CnfFormula f = Parse3Sat({{1, 2}, {-1, 2}, {1, -2}}, 2);
  auto model = SolveBruteForce(f);
  ASSERT_TRUE(model.has_value());
  EXPECT_TRUE(f.Evaluate(*model));
  EXPECT_EQ(*model, (std::vector<bool>{true, true}));
}

TEST(CnfTest, BruteForceDetectsUnsat) {
  const CnfFormula f = Parse3Sat({{1}, {-1}}, 1);
  EXPECT_FALSE(SolveBruteForce(f).has_value());
}

TEST(CnfTest, BruteForceHonorsPins) {
  const CnfFormula f = Parse3Sat({{1, 2}}, 2);
  auto model = SolveBruteForce(f, {{0, false}});
  ASSERT_TRUE(model.has_value());
  EXPECT_FALSE((*model)[0]);
  EXPECT_TRUE((*model)[1]);
  EXPECT_FALSE(SolveBruteForce(Parse3Sat({{1}}, 1), {{0, false}}).has_value());
}

TEST(SatReductionStepsTest, GuardVariableInEveryClause) {
  const CnfFormula psi = Parse3Sat({{1, 2, 3}, {-1, -2}}, 3);
  uint32_t guard = 0;
  const CnfFormula with_guard = AddGuardVariable(psi, &guard);
  EXPECT_EQ(guard, 3u);
  EXPECT_EQ(with_guard.num_vars, 4u);
  for (const CnfClause& c : with_guard.clauses) {
    EXPECT_EQ(c.literals.back(), (Literal{guard, false}));
  }
  // psi satisfiable <=> with_guard satisfiable under guard=false.
  EXPECT_EQ(SolveBruteForce(psi).has_value(),
            SolveBruteForce(with_guard, {{guard, false}}).has_value());
  EXPECT_TRUE(SolveBruteForce(with_guard, {{guard, true}}).has_value());
}

TEST(SatReductionStepsTest, SplitKeepsWidthAtMostThreeAndEquisatisfiability) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const CnfFormula psi = RandomCnf(4, 4, 3, &rng);
    uint32_t guard = 0;
    const CnfFormula wide = AddGuardVariable(psi, &guard);
    const CnfFormula split = SplitWideClauses(wide);
    for (const CnfClause& c : split.clauses) EXPECT_LE(c.literals.size(), 3u);
    EXPECT_EQ(SolveBruteForce(wide, {{guard, false}}).has_value(),
              SolveBruteForce(split, {{guard, false}}).has_value());
  }
}

TEST(SatReductionStepsTest, NonCircularizationPreservesSatisfiability) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const CnfFormula f = RandomCnf(3, 3, 3, &rng);
    std::vector<std::pair<uint32_t, bool>> copy_map;
    const CnfFormula nc = MakeNonCircular(f, &copy_map);
    EXPECT_TRUE(nc.IsNonCircular()) << nc.ToString();
    ASSERT_LE(nc.num_vars, 24u);
    EXPECT_EQ(SolveBruteForce(f).has_value(), SolveBruteForce(nc).has_value())
        << f.ToString() << "  vs  " << nc.ToString();
    // Chain heads keep their ids and satisfying assignments lift.
    if (auto model = SolveBruteForce(f)) {
      const auto lifted = ExtendToCopies(*model, copy_map);
      EXPECT_TRUE(nc.Evaluate(lifted));
    }
  }
}

TEST(SatReductionStepsTest, ConstructiveGuardTrueAssignment) {
  Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    const CnfFormula psi = RandomCnf(4, 5, 3, &rng);
    uint32_t guard = 0;
    const CnfFormula wide = AddGuardVariable(psi, &guard);
    const CnfFormula split = SplitWideClauses(wide);
    const auto base = SatisfyWithGuardTrue(split, guard, wide.num_vars);
    EXPECT_TRUE(split.Evaluate(base)) << split.ToString();
    EXPECT_TRUE(base[guard]);
  }
}

TEST(SatReductionTest, RejectsWideClauses) {
  CnfFormula psi;
  psi.num_vars = 4;
  psi.clauses.push_back(
      CnfClause{{{0, false}, {1, false}, {2, false}, {3, false}}});
  EXPECT_TRUE(ReduceSatToLegality(psi).status().IsInvalidArgument());
}

TEST(SatReductionTest, HistoryIsSerialUpdatePlusOneReader) {
  const CnfFormula psi = Parse3Sat({{1, 2}, {-1, 2}}, 2);
  auto red = ReduceSatToLegality(psi);
  ASSERT_TRUE(red.ok()) << red.status();
  const History& h = red->history;
  EXPECT_TRUE(h.Validate().ok());
  EXPECT_TRUE(h.UpdateSubHistory().IsSerial());
  EXPECT_TRUE(h.Txn(red->reader).IsReadOnly());
  EXPECT_EQ(h.CommittedReadOnlyTxns().size(), 1u);
  EXPECT_EQ(h.CommittedUpdateTxns().size(), red->num_update_txns);
}

TEST(SatReductionTest, SatisfiableFormulaYieldsLegalHistory) {
  const CnfFormula psi = Parse3Sat({{1, 2}, {-1, 2}, {2, -1}}, 2);
  ASSERT_TRUE(SolveBruteForce(psi).has_value());
  auto red = ReduceSatToLegality(psi);
  ASSERT_TRUE(red.ok()) << red.status();
  auto legality = CheckLegality(red->history);
  ASSERT_TRUE(legality.ok()) << legality.status();
  EXPECT_TRUE(legality->legal) << legality->reason;
}

TEST(SatReductionTest, UnsatisfiableFormulaYieldsIllegalHistory) {
  // x & !x, padded to stay in 3-SAT form.
  const CnfFormula psi = Parse3Sat({{1}, {-1}}, 1);
  ASSERT_FALSE(SolveBruteForce(psi).has_value());
  auto red = ReduceSatToLegality(psi);
  ASSERT_TRUE(red.ok()) << red.status();
  auto legality = CheckLegality(red->history);
  ASSERT_TRUE(legality.ok()) << legality.status();
  EXPECT_FALSE(legality->legal);
}

struct ReductionCase {
  uint32_t num_vars;
  uint32_t num_clauses;
  uint32_t max_width;
  uint64_t seed;
  int trials;
};

class SatReductionPropertyTest : public ::testing::TestWithParam<ReductionCase> {};

TEST_P(SatReductionPropertyTest, LegalityMatchesBruteForceSat) {
  const ReductionCase& tc = GetParam();
  Rng rng(tc.seed);
  int sat_count = 0;
  for (int trial = 0; trial < tc.trials; ++trial) {
    const CnfFormula psi = RandomCnf(tc.num_vars, tc.num_clauses, tc.max_width, &rng);
    const bool satisfiable = SolveBruteForce(psi).has_value();
    sat_count += satisfiable;
    auto red = ReduceSatToLegality(psi);
    ASSERT_TRUE(red.ok()) << red.status() << " for " << psi.ToString();
    auto legality = CheckLegality(red->history);
    ASSERT_TRUE(legality.ok()) << legality.status();
    EXPECT_EQ(legality->legal, satisfiable)
        << psi.ToString() << " -> " << legality->reason;
  }
  // The sweep must see both outcomes to be meaningful.
  EXPECT_GT(sat_count, 0);
  EXPECT_LT(sat_count, tc.trials);
}

INSTANTIATE_TEST_SUITE_P(
    Random, SatReductionPropertyTest,
    ::testing::Values(ReductionCase{1, 2, 1, 11, 20},   // unit clauses: often unsat
                      ReductionCase{2, 3, 2, 12, 20},
                      ReductionCase{2, 4, 2, 13, 15},
                      ReductionCase{3, 5, 2, 14, 15},
                      ReductionCase{3, 4, 3, 15, 15}),
    [](const ::testing::TestParamInfo<ReductionCase>& info) {
      return "v" + std::to_string(info.param.num_vars) + "c" +
             std::to_string(info.param.num_clauses) + "w" +
             std::to_string(info.param.max_width);
    });

}  // namespace
}  // namespace bcc
