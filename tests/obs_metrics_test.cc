// Metrics-registry tests (DESIGN.md §4k): histogram bucket-boundary edge
// cases, concurrent recording (run under TSan in CI — relaxed atomics must
// make multi-writer recording race-free and lose no increments), the
// disabled-registry branch-on-null observer-effect contract (mirroring
// tests/obs_sim_test.cc's tracing contract), strict-JSON snapshots, and the
// JSON-lines logger.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace bcc {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(MetricsTest, CounterAndGaugeBasics) {
  MetricsRegistry reg;
  Counter* c = reg.AddCounter("a.count");
  Gauge* g = reg.AddGauge("a.level");
  c->Add();
  c->Add(41);
  g->Set(-7);
  EXPECT_EQ(reg.CounterValue("a.count"), 42u);
  EXPECT_EQ(reg.GaugeValue("a.level"), -7);
  EXPECT_EQ(reg.CounterValue("missing"), 0u);
  EXPECT_EQ(reg.GaugeValue("missing"), 0);
}

TEST(MetricsTest, HistogramBucketBoundaries) {
  // Bounds are INCLUSIVE upper bounds; one implicit overflow bucket above.
  Histogram h({10, 100, 1000});
  ASSERT_EQ(h.num_buckets(), 4u);

  h.Record(0);     // -> bucket 0
  h.Record(10);    // boundary: inclusive -> bucket 0
  h.Record(11);    // -> bucket 1
  h.Record(100);   // boundary -> bucket 1
  h.Record(101);   // -> bucket 2
  h.Record(1000);  // boundary -> bucket 2
  h.Record(1001);  // -> overflow
  h.Record(UINT64_MAX);  // -> overflow

  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 2u);
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), UINT64_MAX);
  EXPECT_EQ(h.bucket_bound(0), 10u);
  EXPECT_EQ(h.bucket_bound(2), 1000u);
}

TEST(MetricsTest, HistogramQuantiles) {
  Histogram h({10, 100, 1000});
  EXPECT_EQ(h.ApproxQuantile(0.5), 0u);  // empty
  for (int i = 0; i < 90; ++i) h.Record(5);
  for (int i = 0; i < 9; ++i) h.Record(50);
  h.Record(5000);
  // p50 lands in the first bucket -> its upper bound; p99 in the second;
  // the overflow tail reports the exact max.
  EXPECT_EQ(h.ApproxQuantile(0.50), 10u);
  EXPECT_EQ(h.ApproxQuantile(0.95), 100u);
  EXPECT_EQ(h.ApproxQuantile(1.0), 5000u);
}

TEST(MetricsTest, HistogramMinMaxSum) {
  Histogram h({8});
  h.Record(3);
  h.Record(20);
  h.Record(7);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 20u);
  EXPECT_EQ(h.sum(), 30u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(MetricsTest, ExponentialBoundsAreStrictlyAscending) {
  const std::vector<uint64_t> b = ExponentialBounds(1, 2.0, 12);
  ASSERT_EQ(b.size(), 12u);
  EXPECT_EQ(b.front(), 1u);
  for (size_t i = 1; i < b.size(); ++i) EXPECT_GT(b[i], b[i - 1]) << i;
  // Sub-doubling growth must still ascend strictly (rounding could stall).
  const std::vector<uint64_t> slow = ExponentialBounds(1, 1.1, 20);
  for (size_t i = 1; i < slow.size(); ++i) EXPECT_GT(slow[i], slow[i - 1]) << i;
}

// TSan-clean concurrent recording: many threads hammer the same counter and
// histogram; relaxed atomics must lose nothing (each fetch_add is atomic)
// and the data-race detector must stay silent.
TEST(MetricsTest, ConcurrentRecordingLosesNothing) {
  MetricsRegistry reg;
  Counter* c = reg.AddCounter("hammered");
  Gauge* g = reg.AddGauge("last");
  Histogram* h = reg.AddHistogram("lat", ExponentialBounds(1, 2.0, 10));

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Add();
        g->Set(t);
        h->Record(static_cast<uint64_t>(i % 700));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->min(), 0u);
  EXPECT_EQ(h->max(), 699u);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < h->num_buckets(); ++i) bucket_total += h->bucket_count(i);
  EXPECT_EQ(bucket_total, h->count());
  EXPECT_GE(g->value(), 0);
  EXPECT_LT(g->value(), kThreads);
}

// The disabled path is a branch on a null handle: no registry exists, no
// atomic is touched, nothing can throw or allocate — the direct analogue of
// obs_sim_test's zero-observer-effect contract at the recording layer.
TEST(MetricsTest, NullHandlesAreNoOps) {
  Counter* c = nullptr;
  Gauge* g = nullptr;
  Histogram* h = nullptr;
  CounterAdd(c);
  CounterAdd(c, 1000);
  GaugeSet(g, 123);
  HistogramRecord(h, 456);
  // Reaching here without a crash IS the assertion; the compiler cannot
  // elide the calls because the pointers are runtime values.
  SUCCEED();
}

TEST(MetricsTest, RegistrySnapshotIsStrictJson) {
  MetricsRegistry reg;
  reg.AddCounter("uplink.accepts")->Add(3);
  reg.AddGauge("pacing.slip_ms")->Set(-2);
  Histogram* h = reg.AddHistogram("validate_us", {10, 100});
  h->Record(7);
  h->Record(5000);

  const std::string json = reg.ToJson();
  ASSERT_TRUE(ValidateJson(json).ok()) << json;
  EXPECT_NE(json.find("\"uplink.accepts\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pacing.slip_ms\":-2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"validate_us\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"buckets\""), std::string::npos) << json;

  // An empty registry still renders a complete document.
  MetricsRegistry empty;
  ASSERT_TRUE(ValidateJson(empty.ToJson()).ok()) << empty.ToJson();
}

TEST(MetricsTest, LoggerWritesJsonLinesOnSchedule) {
  MetricsRegistry reg;
  Counter* c = reg.AddCounter("ticks");
  const std::string path = TempPath("metrics_logger_test.jsonl");
  {
    MetricsLogger logger(path, /*interval_ms=*/100, &reg, "server");
    ASSERT_TRUE(logger.enabled());
    EXPECT_TRUE(logger.MaybeWrite(0).ok());    // before the first interval
    EXPECT_EQ(logger.lines_written(), 0u);
    c->Add();
    EXPECT_TRUE(logger.MaybeWrite(120).ok());  // due
    EXPECT_TRUE(logger.MaybeWrite(130).ok());  // not due again yet
    EXPECT_EQ(logger.lines_written(), 1u);
    c->Add();
    EXPECT_TRUE(logger.MaybeWrite(250).ok());  // due again
    EXPECT_TRUE(logger.WriteNow(260).ok());    // forced final snapshot
    EXPECT_EQ(logger.lines_written(), 3u);
  }

  const std::string content = ReadFileOrDie(path);
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < content.size()) {
    const size_t nl = content.find('\n', start);
    ASSERT_NE(nl, std::string::npos) << "unterminated line";
    lines.push_back(content.substr(start, nl - start));
    start = nl + 1;
  }
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) {
    ASSERT_TRUE(ValidateJson(line).ok()) << line;
    EXPECT_NE(line.find("\"node\":\"server\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"metrics\":"), std::string::npos) << line;
  }
  EXPECT_NE(lines[0].find("\"seq\":0"), std::string::npos);
  EXPECT_NE(lines[2].find("\"ticks\":2"), std::string::npos);
}

TEST(MetricsTest, LoggerDisabledWhenUnconfigured) {
  MetricsRegistry reg;
  MetricsLogger no_path("", 100, &reg, "x");
  EXPECT_FALSE(no_path.enabled());
  EXPECT_TRUE(no_path.MaybeWrite(10000).ok());
  EXPECT_EQ(no_path.lines_written(), 0u);

  MetricsLogger no_interval(TempPath("never.jsonl"), 0, &reg, "x");
  EXPECT_FALSE(no_interval.enabled());
  EXPECT_TRUE(no_interval.WriteNow(1).ok());
  EXPECT_EQ(no_interval.lines_written(), 0u);
}

}  // namespace
}  // namespace bcc
