// Tests for the shared-memory concurrent broadcast engine: seeded
// multi-thread stress runs (TSan-clean by construction of the epoch design)
// and commit/abort parity with the single-threaded BroadcastSim oracle.

#include "sim/concurrent_sim.h"

#include <gtest/gtest.h>

#include "sim/broadcast_sim.h"

namespace bcc {
namespace {

// A small, contended configuration: ~4 server commits per cycle over a
// 16-object database, several client threads reading concurrently.
SimConfig SmallConfig(uint64_t seed) {
  SimConfig config;
  config.algorithm = Algorithm::kFMatrix;
  config.num_objects = 16;
  config.object_size_bits = 256;
  config.client_txn_length = 3;
  config.server_txn_length = 4;
  config.server_txn_interval = 1500;
  config.mean_inter_op_delay = 512;
  config.mean_inter_txn_delay = 1024;
  config.num_clients = 4;
  config.seed = seed;
  config.stop_after_cycles = 40;
  config.num_client_txns = 100000;
  config.warmup_txns = 1;
  return config;
}

TEST(ConcurrentSimTest, RunsAndCompletesTransactions) {
  SimConfig config = SmallConfig(1);
  config.record_decisions = true;
  ConcurrentSim sim(config);
  const auto summary = sim.Run();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->cycles, 40u);
  EXPECT_GT(summary->server_commits, 0u);
  EXPECT_GT(summary->completed_txns, 0u);
  EXPECT_EQ(summary->censored_txns, 0u);
  EXPECT_EQ(sim.decisions().size(), config.num_clients);
  uint64_t logged = 0;
  for (const auto& client_log : sim.decisions()) logged += client_log.size();
  EXPECT_EQ(logged, summary->completed_txns);
}

TEST(ConcurrentSimTest, MatchesSequentialOracleAcrossSeeds) {
  for (const uint64_t seed : {7ull, 1234ull, 987654321ull}) {
    EXPECT_EQ(CrossCheckEngines(SmallConfig(seed)), Status::OK()) << "seed " << seed;
  }
}

TEST(ConcurrentSimTest, MatchesSequentialOracleUnderContention) {
  // Heavier write traffic (a commit roughly every quarter cycle) forces
  // read-condition aborts; the engines must agree on every one of them.
  SimConfig config = SmallConfig(5);
  config.num_objects = 8;
  config.server_txn_interval = 400;
  config.client_txn_length = 4;
  config.num_clients = 6;
  config.stop_after_cycles = 60;
  ASSERT_EQ(CrossCheckEngines(config), Status::OK());

  config.record_decisions = true;
  ConcurrentSim sim(config);
  const auto summary = sim.Run();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_GT(summary->total_restarts, 0u) << "config too mild to exercise aborts";
}

TEST(ConcurrentSimTest, MatchesSequentialOracleForRMatrix) {
  SimConfig config = SmallConfig(11);
  config.algorithm = Algorithm::kRMatrix;
  EXPECT_EQ(CrossCheckEngines(config), Status::OK());
}

TEST(ConcurrentSimTest, MatchesSequentialOracleOnMultiSpeedDisk) {
  // A multi-speed schedule exercises the slot-arithmetic mirror (several
  // appearances per cycle, next-cycle wraparound on the last slot).
  SimConfig config = SmallConfig(13);
  config.hot_set_size = 4;
  config.hot_broadcast_frequency = 3;
  config.client_hot_access_fraction = 0.75;
  config.server_hot_access_fraction = 0.75;
  EXPECT_EQ(CrossCheckEngines(config), Status::OK());
}

TEST(ConcurrentSimTest, StressManyThreadsManyCycles) {
  SimConfig config = SmallConfig(99);
  config.num_clients = 8;
  config.stop_after_cycles = 150;
  config.server_txn_interval = 600;
  ConcurrentSim sim(config);
  const auto summary = sim.Run();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->cycles, 150u);
  EXPECT_GT(summary->completed_txns, 100u);
}

TEST(ConcurrentSimTest, StopsOnTransactionCountWithoutCycleCutoff) {
  SimConfig config = SmallConfig(3);
  config.stop_after_cycles = 0;
  config.num_client_txns = 25;
  config.warmup_txns = 5;
  ConcurrentSim sim(config);
  const auto summary = sim.Run();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  // The cutoff is evaluated at cycle boundaries, so the engine may finish a
  // handful of extra transactions but never an unbounded number.
  EXPECT_GE(summary->completed_txns, 25u);
}

TEST(ConcurrentSimTest, RejectsUnsupportedFeatures) {
  SimConfig cache_config = SmallConfig(1);
  cache_config.enable_cache = true;
  EXPECT_FALSE(ConcurrentSim(cache_config).Run().ok());

  SimConfig update_config = SmallConfig(1);
  update_config.client_update_fraction = 0.5;
  EXPECT_FALSE(ConcurrentSim(update_config).Run().ok());

  SimConfig no_cutoff = SmallConfig(1);
  no_cutoff.stop_after_cycles = 0;
  EXPECT_FALSE(CrossCheckEngines(no_cutoff).ok());
}

TEST(ConcurrentSimTest, RunIsSingleUse) {
  ConcurrentSim sim(SmallConfig(1));
  ASSERT_TRUE(sim.Run().ok());
  EXPECT_FALSE(sim.Run().ok());
}

}  // namespace
}  // namespace bcc
