#include "cc/update_consistency.h"

#include <gtest/gtest.h>

#include "history/history_parser.h"

namespace bcc {
namespace {

// Paper Example 1 (history 1.1), both read-only transactions committed.
History Example1() {
  return MustParseHistory(
      "r1(IBM) w2(IBM) c2 r3(IBM) r3(Sun) w4(Sun) c4 r1(Sun) c1 c3");
}

// Paper Example 2 (history 2.1), t1 an update transaction.
History Example2() {
  return MustParseHistory(
      "r1(IBM) w2(IBM) c2 r3(IBM) r3(Sun) c3 w4(Sun) c4 r1(Sun) w1(DEC) c1");
}

TEST(UpdateConsistencyTest, Example1IsLegalDespiteNonSerializability) {
  // Section 2.3: each read-only txn serializes against the updates it reads
  // from (t1 as t4;t1;t2, t3 as t2;t3;t4) even though H is not serializable.
  auto result = CheckLegality(Example1());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->legal) << result->reason;
}

TEST(UpdateConsistencyTest, Example2IsLegal) {
  auto result = CheckLegality(Example2());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->legal) << result->reason;
}

TEST(UpdateConsistencyTest, NonSerializableUpdatesAreIllegal) {
  const History h = MustParseHistory("r1(x) r2(x) w1(x) w2(x) c1 c2");
  auto result = CheckLegality(h);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->legal);
  EXPECT_NE(result->reason.find("update sub-history"), std::string::npos);
}

TEST(UpdateConsistencyTest, ReadOnlyTxnSpanningInconsistentStateIsIllegal) {
  // t3 reads x before t1 updates it and y after t2 (which read t1's x)
  // updates y: t3 must precede t1 (read x from t0) and follow t2 which
  // follows t1 — cyclic.
  const History h = MustParseHistory(
      "r3(x) w1(x) c1 r2(x) w2(y) c2 r3(y) c3");
  auto result = CheckLegality(h);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->legal);
  EXPECT_NE(result->reason.find("t3"), std::string::npos);
}

TEST(UpdateConsistencyTest, Theorem6WitnessIsLegal) {
  // Appendix C: legal history rejected by APPROX — all-update history whose
  // ww cycles are view-irrelevant because t3 writes both objects last.
  const History h = MustParseHistory(
      "r1(ob1) r2(ob2) w1(ob3) w2(ob3) w2(ob4) w1(ob4) w3(ob3) w3(ob4) c1 c2 c3");
  auto result = CheckLegality(h);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->legal) << result->reason;
}

TEST(UpdateConsistencyTest, PolygraphNodesAreLiveSet) {
  const History h = Example1();
  const Polygraph p1 = BuildTxnPolygraph(h, 1);
  // LIVE(t1) = {t1, t4, t0}: t1 reads IBM from t0, Sun from t4.
  EXPECT_TRUE(p1.base().HasNode(1));
  EXPECT_TRUE(p1.base().HasNode(4));
  EXPECT_TRUE(p1.base().HasNode(kInitTxn));
  EXPECT_FALSE(p1.base().HasNode(2));
  EXPECT_FALSE(p1.base().HasNode(3));
}

TEST(UpdateConsistencyTest, PolygraphReadsFromArcs) {
  const History h = Example1();
  const Polygraph p1 = BuildTxnPolygraph(h, 1);
  EXPECT_TRUE(p1.base().HasEdge(4, 1));  // t1 reads Sun from t4
}

TEST(UpdateConsistencyTest, ForcedArcWhenReadingInitialValue) {
  // t2 reads x from t0 while t1 (live via y) also writes x: t1 can't
  // precede t0, so the arc t2 -> t1 is forced, creating a cycle with t1's
  // write being read by t2... construct: t2 reads y from t1 and x from t0,
  // but t1 wrote x before: then t1 -> t2 (reads-from) and forced t2 -> t1.
  const History h = MustParseHistory("r2(x) w1(x) w1(y) c1 r2(y) c2");
  const Polygraph p = BuildTxnPolygraph(h, 2);
  EXPECT_TRUE(p.base().HasEdge(1, 2));
  EXPECT_TRUE(p.base().HasEdge(2, 1));
  EXPECT_FALSE(p.IsAcyclic());
  EXPECT_FALSE(IsLegal(h));
}

TEST(UpdateConsistencyTest, AbortedReadOnlyTxnNotChecked) {
  // Same inconsistent read-only span as above, but t3 aborts: legal.
  const History h = MustParseHistory(
      "r3(x) w1(x) c1 r2(x) w2(y) c2 r3(y) a3");
  auto result = CheckLegality(h);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->legal) << result->reason;
}

TEST(UpdateConsistencyTest, ActiveReadOnlyTxnIsChecked) {
  // Prefix closure: an uncommitted read-only transaction with inconsistent
  // reads already makes the history illegal.
  const History h = MustParseHistory("r3(x) w1(x) c1 r2(x) w2(y) c2 r3(y)");
  auto result = CheckLegality(h);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->legal);
}

TEST(UpdateConsistencyTest, EmptyHistoryIsLegal) {
  EXPECT_TRUE(IsLegal(History{}));
}

TEST(UpdateConsistencyTest, ReadOnlyHistoryIsLegal) {
  EXPECT_TRUE(IsLegal(MustParseHistory("r1(x) r2(y) r1(y) c1 r2(x) c2")));
}

}  // namespace
}  // namespace bcc
