// Randomized oracle tests for the cycle-fused maintenance path (PR 5):
//   - FMatrix::ApplyCommitBatch over a cycle's commits is bit-identical to
//     applying ApplyCommit sequentially in the same order (DESIGN.md §4g),
//     including the dirty-column drain order the delta broadcaster depends on;
//   - ServerTxnManager's lazy batch (flush on cycle advance or observation)
//     is indistinguishable from the per-commit oracle at every observation;
//   - copy-on-write snapshots equal deep copies taken at the same instant and
//     stay bit-identical under arbitrary later commits;
//   - per-cycle snapshot cost scales with touched columns, not n².

#include "common/cycle_stamp.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "matrix/f_matrix.h"
#include "server/txn_manager.h"

namespace bcc {
namespace {

// A random read/write-set pair: empty, read-only, and write-only commits and
// duplicate write-set entries are all generated (duplicates are legal for the
// raw matrix op even though ServerTxn sets are duplicate-free).
CommitSets RandomCommit(Rng& rng, uint32_t n) {
  CommitSets c;
  const uint32_t max_set = n < 6 ? n : 6;
  c.read_set = rng.SampleWithoutReplacement(n, static_cast<uint32_t>(rng.NextBounded(max_set + 1)));
  c.write_set =
      rng.SampleWithoutReplacement(n, static_cast<uint32_t>(rng.NextBounded(max_set + 1)));
  if (!c.write_set.empty() && rng.NextBernoulli(0.25)) {
    c.write_set.push_back(c.write_set[rng.NextBounded(c.write_set.size())]);
  }
  return c;
}

std::vector<CommitSets> RandomBatch(Rng& rng, uint32_t n, uint32_t max_commits) {
  std::vector<CommitSets> batch(rng.NextBounded(max_commits + 1));
  for (CommitSets& c : batch) c = RandomCommit(rng, n);
  return batch;
}

// Warms both matrices identically so batches start from a non-trivial state.
void Warm(Rng& rng, FMatrix& a, FMatrix& b, uint32_t n, Cycle cycles) {
  for (Cycle cycle = 1; cycle <= cycles; ++cycle) {
    const CommitSets c = RandomCommit(rng, n);
    a.ApplyCommit(c.read_set, c.write_set, cycle);
    b.ApplyCommit(c.read_set, c.write_set, cycle);
  }
}

TEST(CommitBatchPropertyTest, BatchMatchesSequentialAcrossSeeds) {
  for (uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed);
    const uint32_t n = static_cast<uint32_t>(rng.NextInt(1, 64));
    FMatrix batched(n), sequential(n);
    batched.EnableDirtyTracking();
    sequential.EnableDirtyTracking();
    Warm(rng, batched, sequential, n, rng.NextBounded(20));
    batched.TakeTouchedColumns();
    sequential.TakeTouchedColumns();

    // Several consecutive cycles, each fused as one batch on one side and
    // replayed commit-by-commit on the other.
    Cycle cycle = 100;
    for (int round = 0; round < 4; ++round, ++cycle) {
      const std::vector<CommitSets> batch = RandomBatch(rng, n, 12);
      batched.ApplyCommitBatch(batch, cycle);
      for (const CommitSets& c : batch) {
        sequential.ApplyCommit(c.read_set, c.write_set, cycle);
      }
      ASSERT_TRUE(batched == sequential)
          << "seed " << seed << " n " << n << " cycle " << cycle << " batch of " << batch.size();
      // The delta broadcaster depends on the drain CONTENTS and ORDER
      // (first-touch), not just the final matrix.
      EXPECT_EQ(batched.TakeTouchedColumns(), sequential.TakeTouchedColumns())
          << "seed " << seed << " cycle " << cycle;
    }
  }
}

TEST(CommitBatchPropertyTest, BatchMatchesSequentialUnderWraparoundStamps) {
  // ts ∈ {2, 3}: absolute cycles run far past the 2^ts stamp window, so the
  // wire residues every entry would broadcast wrap repeatedly. Batch and
  // sequential maintenance must agree on the raw matrix AND on every encoded
  // residue at every cycle.
  for (const unsigned ts : {2u, 3u}) {
    const CycleStampCodec codec(ts);
    for (uint64_t seed = 0; seed < 10; ++seed) {
      Rng rng(0x1000 * ts + seed);
      const uint32_t n = static_cast<uint32_t>(rng.NextInt(2, 24));
      FMatrix batched(n), sequential(n);
      const Cycle last = 4 * codec.max_cycles();  // several full wraps
      for (Cycle cycle = 1; cycle <= last; ++cycle) {
        const std::vector<CommitSets> batch = RandomBatch(rng, n, 4);
        batched.ApplyCommitBatch(batch, cycle);
        for (const CommitSets& c : batch) {
          sequential.ApplyCommit(c.read_set, c.write_set, cycle);
        }
        ASSERT_TRUE(batched == sequential) << "ts " << ts << " seed " << seed << " cycle " << cycle;
        for (ObjectId j = 0; j < n; ++j) {
          for (ObjectId i = 0; i < n; ++i) {
            ASSERT_EQ(codec.Encode(batched.At(i, j)), codec.Encode(sequential.At(i, j)));
          }
        }
      }
    }
  }
}

TEST(CommitBatchPropertyTest, ManagerBatchingMatchesPerCommitOracle) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(0xbeef + seed);
    const uint32_t n = static_cast<uint32_t>(rng.NextInt(2, 32));
    TxnManagerOptions batched_options;
    batched_options.track_dirty_columns = true;
    batched_options.batch_commit_maintenance = true;
    TxnManagerOptions oracle_options = batched_options;
    oracle_options.batch_commit_maintenance = false;
    ServerTxnManager batched(n, batched_options);
    ServerTxnManager oracle(n, oracle_options);

    TxnId next_id = 1;
    Cycle cycle = 1;
    for (int step = 0; step < 120; ++step) {
      ServerTxn txn;
      txn.id = next_id++;
      const uint32_t max_set = n < 4 ? n : 4;
      txn.read_set =
          rng.SampleWithoutReplacement(n, 1 + static_cast<uint32_t>(rng.NextBounded(max_set)));
      txn.write_set =
          rng.SampleWithoutReplacement(n, 1 + static_cast<uint32_t>(rng.NextBounded(max_set)));
      batched.ExecuteAndCommit(txn, cycle);
      oracle.ExecuteAndCommit(txn, cycle);
      // Random mid-cycle observations: each forces the lazy batch to flush,
      // and must expose exactly the sequential-maintenance state.
      if (rng.NextBernoulli(0.2)) {
        ASSERT_TRUE(batched.f_matrix() == oracle.f_matrix()) << "seed " << seed << " step " << step;
      }
      if (rng.NextBernoulli(0.1)) {
        ASSERT_TRUE(batched.SnapshotFMatrix() == oracle.f_matrix());
      }
      if (rng.NextBernoulli(0.3)) ++cycle;  // commits cluster randomly per cycle
    }
    EXPECT_TRUE(batched.f_matrix() == oracle.f_matrix()) << "seed " << seed;
    EXPECT_TRUE(batched.mc_vector() == oracle.mc_vector()) << "seed " << seed;
    // Drains must agree after the final flush as well (delta-broadcast path).
    EXPECT_EQ(batched.TakeTouchedColumns(), oracle.TakeTouchedColumns());
  }
}

TEST(CommitBatchPropertyTest, CoWSnapshotsEqualDeepCopiesUnderInterleavedCommits) {
  for (uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(0xc0de + seed);
    const uint32_t n = static_cast<uint32_t>(rng.NextInt(1, 48));
    FMatrix m(n);
    // Each snapshot is paired with a deep copy taken at the same instant; all
    // pairs must still match after every later mutation (CoW immutability).
    std::vector<std::pair<FMatrixSnapshot, FMatrix>> pinned;
    Cycle cycle = 1;
    for (int step = 0; step < 60; ++step) {
      if (rng.NextBernoulli(0.5)) {
        m.ApplyCommitBatch(RandomBatch(rng, n, 6), cycle++);
      } else {
        const CommitSets c = RandomCommit(rng, n);
        m.ApplyCommit(c.read_set, c.write_set, cycle++);
      }
      if (rng.NextBernoulli(0.3)) pinned.emplace_back(m.Snapshot(), m);
    }
    pinned.emplace_back(m.Snapshot(), m);
    for (const auto& [snap, deep] : pinned) {
      ASSERT_TRUE(snap == deep) << "seed " << seed;
      ASSERT_TRUE(snap.Materialize() == deep) << "seed " << seed;
    }
  }
}

TEST(CommitBatchPropertyTest, SnapshotCostScalesWithTouchedColumns) {
  const uint32_t n = 256;
  FMatrix m(n);
  Rng rng(42);
  const CommitSets warm = RandomCommit(rng, n);
  m.ApplyCommit(warm.read_set, warm.write_set, 1);
  (void)m.Snapshot();
  const uint64_t after_first = m.snapshot_columns_copied();
  EXPECT_EQ(after_first, n);  // first snapshot pays the full column count once

  // An unchanged matrix re-snapshots for free.
  (void)m.Snapshot();
  EXPECT_EQ(m.snapshot_columns_copied(), after_first);

  // Steady state: each cycle touches |union WS| columns and the next snapshot
  // copies exactly that many, independent of n.
  uint64_t copied = after_first;
  for (Cycle cycle = 2; cycle < 30; ++cycle) {
    std::vector<CommitSets> batch(3);
    std::vector<uint8_t> touched(n, 0);
    for (CommitSets& c : batch) {
      c.read_set = rng.SampleWithoutReplacement(n, 3);
      c.write_set = rng.SampleWithoutReplacement(n, 3);
      for (const ObjectId w : c.write_set) touched[w] = 1;
    }
    m.ApplyCommitBatch(batch, cycle);
    (void)m.Snapshot();
    uint64_t touched_count = 0;
    for (const uint8_t t : touched) touched_count += t;
    EXPECT_EQ(m.snapshot_columns_copied() - copied, touched_count) << "cycle " << cycle;
    copied = m.snapshot_columns_copied();
  }
}

}  // namespace
}  // namespace bcc
