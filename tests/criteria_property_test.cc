// Property tests sweeping the Figure 1 correctness-criteria lattice on
// randomly generated histories.

#include "cc/criteria.h"

#include <gtest/gtest.h>

#include "cc/approx.h"
#include "cc/update_consistency.h"
#include "history/random_history.h"

namespace bcc {
namespace {

struct LatticeCase {
  const char* name;
  RandomHistoryOptions options;
  int trials;
};

class LatticePropertyTest : public ::testing::TestWithParam<LatticeCase> {};

TEST_P(LatticePropertyTest, Figure1ImplicationsHold) {
  const LatticeCase& tc = GetParam();
  Rng rng(0xbcc0 + static_cast<uint64_t>(tc.options.num_objects));
  int legal_count = 0, approx_count = 0;
  for (int i = 0; i < tc.trials; ++i) {
    const History h = GenerateRandomHistory(tc.options, &rng);
    auto report = SweepLattice(h);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_TRUE(report->ImplicationsHold())
        << h.ToString() << " -> " << report->ToString();
    legal_count += report->legal;
    approx_count += report->approx_accepted;
  }
  // The generator must exercise both accept and reject paths.
  EXPECT_GT(legal_count, 0) << tc.name;
  EXPECT_LT(approx_count, tc.trials) << tc.name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LatticePropertyTest,
    ::testing::Values(
        LatticeCase{"small_dense", {.num_objects = 3,
                                    .num_update_txns = 3,
                                    .num_read_only_txns = 2,
                                    .max_reads_per_txn = 2,
                                    .max_writes_per_txn = 2},
                    400},
        LatticeCase{"wider_db", {.num_objects = 8,
                                 .num_update_txns = 4,
                                 .num_read_only_txns = 2,
                                 .max_reads_per_txn = 3,
                                 .max_writes_per_txn = 2},
                    300},
        LatticeCase{"serial_updates", {.num_objects = 4,
                                       .num_update_txns = 4,
                                       .num_read_only_txns = 3,
                                       .max_reads_per_txn = 3,
                                       .max_writes_per_txn = 2,
                                       .serial_updates = true},
                    400},
        LatticeCase{"with_aborts", {.num_objects = 4,
                                    .num_update_txns = 3,
                                    .num_read_only_txns = 2,
                                    .max_reads_per_txn = 2,
                                    .max_writes_per_txn = 2,
                                    .abort_probability = 0.3},
                    300},
        LatticeCase{"many_readers", {.num_objects = 5,
                                     .num_update_txns = 2,
                                     .num_read_only_txns = 5,
                                     .max_reads_per_txn = 4,
                                     .max_writes_per_txn = 2},
                    300}),
    [](const ::testing::TestParamInfo<LatticeCase>& info) { return info.param.name; });

TEST(LatticePropertyTest, SerialUpdatesAlwaysConflictSerializableUpdateSubHistory) {
  // At the broadcast server update transactions run serially; H_update must
  // always pass APPROX condition 1. Rejections can then only come from
  // read-only serialization graphs.
  Rng rng(1234);
  RandomHistoryOptions o;
  o.serial_updates = true;
  o.num_update_txns = 5;
  o.num_read_only_txns = 3;
  for (int i = 0; i < 300; ++i) {
    const History h = GenerateRandomHistory(o, &rng);
    const ApproxResult r = CheckApprox(h);
    if (!r.accepted) {
      EXPECT_EQ(r.reason.find("update sub-history"), std::string::npos)
          << h.ToString();
    }
  }
}

TEST(LatticePropertyTest, ApproxSubsetOfLegalWitnessedStrict) {
  // Theorem 6 says the inclusion is proper; the random sweep should find at
  // least one legal history rejected by APPROX across enough trials.
  Rng rng(555);
  RandomHistoryOptions o;
  o.num_objects = 3;
  o.num_update_txns = 3;
  o.num_read_only_txns = 1;
  o.max_reads_per_txn = 2;
  o.max_writes_per_txn = 2;
  int strict = 0;
  for (int i = 0; i < 2000; ++i) {
    const History h = GenerateRandomHistory(o, &rng);
    auto report = SweepLattice(h);
    ASSERT_TRUE(report.ok());
    if (report->legal && !report->approx_accepted) ++strict;
  }
  EXPECT_GT(strict, 0);
}

TEST(CriterionNameTest, AllNamed) {
  EXPECT_EQ(CriterionName(Criterion::kConflictSerializable), "conflict-serializable");
  EXPECT_EQ(CriterionName(Criterion::kViewSerializable), "view-serializable");
  EXPECT_EQ(CriterionName(Criterion::kApprox), "APPROX");
  EXPECT_EQ(CriterionName(Criterion::kLegal), "legal (update-consistent)");
}

TEST(SatisfiesTest, DispatchesToCheckers) {
  Rng rng(9);
  RandomHistoryOptions o;
  const History h = GenerateRandomHistory(o, &rng);
  for (Criterion c : {Criterion::kConflictSerializable, Criterion::kViewSerializable,
                      Criterion::kApprox, Criterion::kLegal}) {
    EXPECT_TRUE(Satisfies(c, h).ok());
  }
}

}  // namespace
}  // namespace bcc
