#include "common/cycle_stamp.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace bcc {
namespace {

TEST(CycleStampTest, ModulusFromBits) {
  EXPECT_EQ(CycleStampCodec(8).modulus(), 256u);
  EXPECT_EQ(CycleStampCodec(8).max_cycles(), 255u);
  EXPECT_EQ(CycleStampCodec(1).modulus(), 2u);
  EXPECT_EQ(CycleStampCodec(16).modulus(), 65536u);
}

TEST(CycleStampTest, RoundTripWithinWindow) {
  const CycleStampCodec codec(8);
  for (Cycle current = 0; current < 2000; current += 7) {
    for (Cycle age = 0; age <= codec.max_cycles() && age <= current; age += 13) {
      const Cycle absolute = current - age;
      EXPECT_EQ(codec.Decode(codec.Encode(absolute), current), absolute)
          << "current=" << current << " absolute=" << absolute;
    }
  }
}

TEST(CycleStampTest, ExactAtWindowEdge) {
  const CycleStampCodec codec(4);  // window of 16 cycles
  const Cycle current = 1000;
  const Cycle oldest_exact = current - codec.max_cycles();
  EXPECT_EQ(codec.Decode(codec.Encode(oldest_exact), current), oldest_exact);
}

TEST(CycleStampTest, BeyondWindowDecodesTooRecentNeverFuture) {
  // Stamps older than the window alias to a more recent cycle. That bias
  // direction is what makes wraparound safe for the protocol: a too-recent
  // decoded commit cycle can only cause spurious aborts (C(i,j) >= cycle),
  // never a false acceptance.
  const CycleStampCodec codec(8);
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    const Cycle current = 300 + rng.NextBounded(100000);
    const Cycle absolute = rng.NextBounded(current);
    const Cycle decoded = codec.Decode(codec.Encode(absolute), current);
    EXPECT_LE(decoded, current);
    EXPECT_GE(decoded, absolute);
    EXPECT_EQ((decoded - absolute) % codec.modulus(), 0u);
  }
}

TEST(CycleStampTest, NearEpochClampsAtZero) {
  const CycleStampCodec codec(8);
  // Residue 200 at current cycle 10: no absolute cycle <= 10 has residue
  // 200; the decoder clamps to 0 rather than inventing a future cycle.
  EXPECT_EQ(codec.Decode(200, 10), 0u);
}

TEST(CycleStampTest, EncodeMasksHighBits) {
  const CycleStampCodec codec(8);
  EXPECT_EQ(codec.Encode(256), 0u);
  EXPECT_EQ(codec.Encode(511), 255u);
  EXPECT_EQ(codec.Encode(0x1234567890ull), codec.Encode(0x1234567890ull & 0xff));
}

}  // namespace
}  // namespace bcc
