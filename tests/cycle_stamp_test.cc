#include "common/cycle_stamp.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "matrix/f_matrix.h"
#include "matrix/mc_vector.h"

namespace bcc {
namespace {

TEST(CycleStampTest, ModulusFromBits) {
  EXPECT_EQ(CycleStampCodec(8).modulus(), 256u);
  EXPECT_EQ(CycleStampCodec(8).max_cycles(), 255u);
  EXPECT_EQ(CycleStampCodec(1).modulus(), 2u);
  EXPECT_EQ(CycleStampCodec(16).modulus(), 65536u);
}

TEST(CycleStampTest, RoundTripWithinWindow) {
  const CycleStampCodec codec(8);
  for (Cycle current = 0; current < 2000; current += 7) {
    for (Cycle age = 0; age <= codec.max_cycles() && age <= current; age += 13) {
      const Cycle absolute = current - age;
      EXPECT_EQ(codec.Decode(codec.Encode(absolute), current), absolute)
          << "current=" << current << " absolute=" << absolute;
    }
  }
}

TEST(CycleStampTest, ExactAtWindowEdge) {
  const CycleStampCodec codec(4);  // window of 16 cycles
  const Cycle current = 1000;
  const Cycle oldest_exact = current - codec.max_cycles();
  EXPECT_EQ(codec.Decode(codec.Encode(oldest_exact), current), oldest_exact);
}

TEST(CycleStampTest, BeyondWindowDecodesTooRecentNeverFuture) {
  // Stamps older than the window alias to a more recent cycle. That bias
  // direction is what makes wraparound safe for the protocol: a too-recent
  // decoded commit cycle can only cause spurious aborts (C(i,j) >= cycle),
  // never a false acceptance.
  const CycleStampCodec codec(8);
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    const Cycle current = 300 + rng.NextBounded(100000);
    const Cycle absolute = rng.NextBounded(current);
    const Cycle decoded = codec.Decode(codec.Encode(absolute), current);
    EXPECT_LE(decoded, current);
    EXPECT_GE(decoded, absolute);
    EXPECT_EQ((decoded - absolute) % codec.modulus(), 0u);
  }
}

TEST(CycleStampTest, NearEpochClampsAtZero) {
  const CycleStampCodec codec(8);
  // Residue 200 at current cycle 10: no absolute cycle <= 10 has residue
  // 200; the decoder clamps to 0 rather than inventing a future cycle.
  EXPECT_EQ(codec.Decode(200, 10), 0u);
}

TEST(CycleStampTest, ClampUnreachableFromValidEncodesAndNeverUnderestimates) {
  // Regression for the clamp-to-0 path (`back > current`): exhaustively, for
  // small codecs, (a) every residue some valid stamp c <= current produces
  // decodes to a value >= c (never an underestimate, in particular never the
  // 0 clamp unless c == 0 decodes exactly), and (b) the clamp fires only for
  // residues NO valid encode can produce — i.e. a well-formed broadcast
  // never reaches it.
  for (unsigned bits : {2u, 3u, 8u}) {
    const CycleStampCodec codec(bits);
    const uint64_t m = codec.modulus();
    for (Cycle current = 0; current < 3 * m + 2; ++current) {
      // (a) valid stamps never decode below themselves.
      for (Cycle c = 0; c <= current; ++c) {
        const Cycle decoded = codec.Decode(codec.Encode(c), current);
        ASSERT_GE(decoded, c) << "bits=" << bits << " current=" << current << " c=" << c;
        ASSERT_LE(decoded, current);
        ASSERT_EQ((decoded - c) % m, 0u);
      }
      // (b) the clamp (decode == 0 with a nonzero "back" distance, i.e.
      // back > current) is hit only by residues unproducible at <= current.
      for (uint32_t r = 0; r < m; ++r) {
        const uint64_t back = (current - r) & (m - 1);
        if (back <= current) continue;  // normal branch
        bool producible = false;
        for (Cycle c = 0; c <= current && !producible; ++c) {
          producible = codec.Encode(c) == r;
        }
        ASSERT_FALSE(producible)
            << "residue " << r << " takes the clamp at current=" << current
            << " yet a valid stamp produces it";
        ASSERT_EQ(codec.Decode(r, current), 0u);
      }
    }
  }
}

TEST(CycleStampTest, WindowedDecodeCausesSpuriousAbortsOnlyThroughFMatrix) {
  // End-to-end half of the satellite: run randomized control matrices and
  // read sets through FMatrix::ReadCondition twice — once with the true
  // (unbounded) stamps, once with stamps round-tripped through the windowed
  // codec — and assert the decoded matrix accepts only reads the true matrix
  // accepts. With ts = 2 most of the history is out of window, so the
  // aliasing (and, for garbage-free inputs, the absence of the clamp) is
  // exercised hard.
  for (unsigned bits : {2u, 3u}) {
    const CycleStampCodec codec(bits);
    Rng rng(1234 + bits);
    const uint32_t n = 6;
    for (int trial = 0; trial < 2000; ++trial) {
      const Cycle current = rng.NextBounded(40);
      FMatrix true_m(n), decoded_m(n);
      for (ObjectId j = 0; j < n; ++j) {
        for (ObjectId i = 0; i < n; ++i) {
          const Cycle c = rng.NextBounded(static_cast<uint64_t>(current) + 1);
          true_m.Set(i, j, c);
          decoded_m.Set(i, j, codec.Decode(codec.Encode(c), current));
        }
      }
      std::vector<ReadRecord> reads;
      const uint32_t num_reads = 1 + static_cast<uint32_t>(rng.NextBounded(3));
      for (uint32_t k = 0; k < num_reads; ++k) {
        reads.push_back({static_cast<ObjectId>(rng.NextBounded(n)),
                         rng.NextBounded(static_cast<uint64_t>(current) + 1)});
      }
      for (ObjectId j = 0; j < n; ++j) {
        if (decoded_m.ReadCondition(reads, j)) {
          ASSERT_TRUE(true_m.ReadCondition(reads, j))
              << "bits=" << bits << " trial=" << trial
              << ": decoded matrix accepted a read the true matrix rejects";
        }
      }
    }
  }
}

TEST(CycleStampTest, WindowedDecodeCausesSpuriousAbortsOnlyThroughMcVector) {
  // Same property through the reduced-vector conditions (Datacycle and
  // R-Matrix): decoded-acceptance must imply true-acceptance.
  for (unsigned bits : {2u, 3u}) {
    const CycleStampCodec codec(bits);
    Rng rng(4321 + bits);
    const uint32_t n = 6;
    for (int trial = 0; trial < 2000; ++trial) {
      const Cycle current = rng.NextBounded(40);
      McVector true_mc(n), decoded_mc(n);
      for (ObjectId i = 0; i < n; ++i) {
        const Cycle c = rng.NextBounded(static_cast<uint64_t>(current) + 1);
        true_mc.Set(i, c);
        decoded_mc.Set(i, codec.Decode(codec.Encode(c), current));
      }
      std::vector<ReadRecord> reads;
      const uint32_t num_reads = 1 + static_cast<uint32_t>(rng.NextBounded(3));
      for (uint32_t k = 0; k < num_reads; ++k) {
        reads.push_back({static_cast<ObjectId>(rng.NextBounded(n)),
                         rng.NextBounded(static_cast<uint64_t>(current) + 1)});
      }
      if (DatacycleReadCondition(decoded_mc, reads)) {
        ASSERT_TRUE(DatacycleReadCondition(true_mc, reads))
            << "bits=" << bits << " trial=" << trial;
      }
      const ObjectId j = static_cast<ObjectId>(rng.NextBounded(n));
      const Cycle first = rng.NextBounded(static_cast<uint64_t>(current) + 1);
      if (RMatrixReadCondition(decoded_mc, reads, j, first)) {
        ASSERT_TRUE(RMatrixReadCondition(true_mc, reads, j, first))
            << "bits=" << bits << " trial=" << trial;
      }
    }
  }
}

TEST(CycleStampTest, EncodeMasksHighBits) {
  const CycleStampCodec codec(8);
  EXPECT_EQ(codec.Encode(256), 0u);
  EXPECT_EQ(codec.Encode(511), 255u);
  EXPECT_EQ(codec.Encode(0x1234567890ull), codec.Encode(0x1234567890ull & 0xff));
}

}  // namespace
}  // namespace bcc
