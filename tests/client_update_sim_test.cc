// Mixed client workload (read-only + update transactions committing over
// the uplink): end-to-end behavior and consistency audits.

#include <gtest/gtest.h>

#include "cc/approx.h"
#include "cc/conflict_serializability.h"
#include "sim/broadcast_sim.h"

namespace bcc {
namespace {

SimConfig MixedConfig(Algorithm a, double update_fraction, uint64_t seed = 3) {
  SimConfig c;
  c.algorithm = a;
  c.num_objects = 15;
  c.object_size_bits = 512;
  c.client_txn_length = 3;
  c.server_txn_length = 4;
  c.server_txn_interval = 30000;
  c.mean_inter_op_delay = 2000;
  c.mean_inter_txn_delay = 4000;
  c.num_client_txns = 80;
  c.warmup_txns = 20;
  c.client_update_fraction = update_fraction;
  c.client_update_writes = 2;
  c.seed = seed;
  return c;
}

TEST(ClientUpdateSimTest, MixedWorkloadRunsForAllAlgorithms) {
  for (Algorithm a : kAllAlgorithms) {
    auto s = RunSimulation(MixedConfig(a, 0.3));
    ASSERT_TRUE(s.ok()) << AlgorithmName(a) << ": " << s.status();
    EXPECT_EQ(s->total_txns, 80u);
    EXPECT_GT(s->client_update_commits, 0u) << AlgorithmName(a);
  }
}

TEST(ClientUpdateSimTest, ZeroFractionMeansNoUplinkTraffic) {
  auto s = RunSimulation(MixedConfig(Algorithm::kFMatrix, 0.0));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->client_update_commits, 0u);
  EXPECT_EQ(s->client_update_rejects, 0u);
}

TEST(ClientUpdateSimTest, AllUpdatesStillComplete) {
  auto s = RunSimulation(MixedConfig(Algorithm::kRMatrix, 1.0));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->total_txns, 80u);
  EXPECT_EQ(s->client_update_commits, 80u);
}

TEST(ClientUpdateSimTest, ValidatorRejectionsTriggerRestarts) {
  // Hot server + long client update transactions: some uplink commits must
  // fail validation and retry.
  SimConfig c = MixedConfig(Algorithm::kFMatrix, 1.0, 9);
  c.server_txn_interval = 4000;
  c.client_txn_length = 4;
  auto s = RunSimulation(c);
  ASSERT_TRUE(s.ok());
  EXPECT_GT(s->client_update_rejects, 0u);
  EXPECT_GT(s->total_restarts + s->client_update_rejects, 0u);
}

TEST(ClientUpdateSimTest, DeterministicGivenSeed) {
  auto a = RunSimulation(MixedConfig(Algorithm::kFMatrix, 0.4, 5));
  auto b = RunSimulation(MixedConfig(Algorithm::kFMatrix, 0.4, 5));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->sim_end_time, b->sim_end_time);
  EXPECT_EQ(a->client_update_commits, b->client_update_commits);
  EXPECT_EQ(a->client_update_rejects, b->client_update_rejects);
}

TEST(ClientUpdateSimTest, OracleAuditPassesWithUpdates) {
  for (Algorithm a : {Algorithm::kFMatrix, Algorithm::kRMatrix, Algorithm::kDatacycle}) {
    SimConfig c = MixedConfig(a, 0.3, 17);
    c.record_history = true;
    BroadcastSim sim(c);
    ASSERT_TRUE(sim.Run().ok());
    EXPECT_EQ(sim.VerifyOracle(), Status::OK()) << AlgorithmName(a);
  }
}

TEST(ClientUpdateSimTest, UpdateSubHistoryIncludesClientUpdateTxns) {
  SimConfig c = MixedConfig(Algorithm::kFMatrix, 0.5, 21);
  c.record_history = true;
  BroadcastSim sim(c);
  ASSERT_TRUE(sim.Run().ok());
  auto oracle = sim.BuildOracleHistory();
  ASSERT_TRUE(oracle.ok());
  bool saw_client_update = false;
  for (TxnId t : oracle->CommittedUpdateTxns()) {
    if (t >= 2 * kClientTxnIdBase) saw_client_update = true;
  }
  EXPECT_TRUE(saw_client_update);
  EXPECT_TRUE(IsConflictSerializable(oracle->UpdateSubHistory()));
}

TEST(ClientUpdateSimTest, CommittedUpdatesPreserveApproxOverall) {
  SimConfig c = MixedConfig(Algorithm::kRMatrix, 0.4, 23);
  c.record_history = true;
  BroadcastSim sim(c);
  ASSERT_TRUE(sim.Run().ok());
  auto oracle = sim.BuildOracleHistory();
  ASSERT_TRUE(oracle.ok());
  const ApproxResult approx = CheckApprox(*oracle);
  EXPECT_TRUE(approx.accepted) << approx.reason;
}

}  // namespace
}  // namespace bcc
