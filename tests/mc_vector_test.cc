#include "matrix/mc_vector.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "matrix/f_matrix.h"

namespace bcc {
namespace {

TEST(McVectorTest, StartsAtZero) {
  McVector mc(3);
  for (ObjectId i = 0; i < 3; ++i) EXPECT_EQ(mc.At(i), 0u);
}

TEST(McVectorTest, ApplyCommitStampsWrites) {
  McVector mc(3);
  mc.ApplyCommit(std::vector<ObjectId>{0, 2}, 7);
  EXPECT_EQ(mc.At(0), 7u);
  EXPECT_EQ(mc.At(1), 0u);
  EXPECT_EQ(mc.At(2), 7u);
}

TEST(McVectorTest, EqualsMaxColumnOfFullMatrix) {
  // MC(i) == max_j C(i, j) at every step of a random serial workload.
  Rng rng(11);
  const uint32_t n = 6;
  FMatrix c(n);
  McVector mc(n);
  for (Cycle cycle = 1; cycle <= 40; ++cycle) {
    const auto reads = rng.SampleWithoutReplacement(n, static_cast<uint32_t>(rng.NextBounded(3)));
    const auto writes =
        rng.SampleWithoutReplacement(n, 1 + static_cast<uint32_t>(rng.NextBounded(2)));
    c.ApplyCommit(reads, writes, cycle);
    mc.ApplyCommit(writes, cycle);
    for (ObjectId i = 0; i < n; ++i) {
      Cycle max_col = 0;
      for (ObjectId j = 0; j < n; ++j) max_col = std::max(max_col, c.At(i, j));
      EXPECT_EQ(mc.At(i), max_col) << "i=" << i << " cycle=" << cycle;
    }
  }
}

TEST(DatacycleConditionTest, RejectsAnyOverwrittenRead) {
  McVector mc(3);
  mc.ApplyCommit(std::vector<ObjectId>{1}, 5);
  // Read ob1 in cycle 6 (after write committed): fine.
  EXPECT_TRUE(DatacycleReadCondition(mc, std::vector<ReadRecord>{{1, 6}}));
  // Read ob1 in cycle 5 (the write committed in cycle 5 >= 5): stale.
  EXPECT_FALSE(DatacycleReadCondition(mc, std::vector<ReadRecord>{{1, 5}}));
  // Unrelated read unaffected.
  EXPECT_TRUE(DatacycleReadCondition(mc, std::vector<ReadRecord>{{0, 1}}));
}

TEST(DatacycleConditionTest, VacuouslyTrueWithNoReads) {
  McVector mc(2);
  EXPECT_TRUE(DatacycleReadCondition(mc, {}));
}

TEST(RMatrixConditionTest, FirstDisjunctMatchesDatacycle) {
  McVector mc(3);
  const std::vector<ReadRecord> reads{{0, 4}, {1, 4}};
  // Nothing overwritten: accept regardless of the target object's state.
  mc.ApplyCommit(std::vector<ObjectId>{2}, 9);
  EXPECT_TRUE(RMatrixReadCondition(mc, reads, 2, /*first_read_cycle=*/1));
}

TEST(RMatrixConditionTest, SecondDisjunctSavesStaleReads) {
  McVector mc(3);
  // ob0 was overwritten after the client read it (cycle 9 >= 4)...
  mc.ApplyCommit(std::vector<ObjectId>{0}, 9);
  const std::vector<ReadRecord> reads{{0, 4}};
  // ...but ob1 is unchanged since the transaction's first read (MC(1)=0 <
  // 4): R-Matrix accepts where Datacycle aborts.
  EXPECT_FALSE(DatacycleReadCondition(mc, reads));
  EXPECT_TRUE(RMatrixReadCondition(mc, reads, 1, /*first_read_cycle=*/4));
}

TEST(RMatrixConditionTest, RejectsWhenBothDisjunctsFail) {
  McVector mc(3);
  mc.ApplyCommit(std::vector<ObjectId>{0, 1}, 9);
  const std::vector<ReadRecord> reads{{0, 4}};
  // ob1 also changed (cycle 9 >= first read 4): reject.
  EXPECT_FALSE(RMatrixReadCondition(mc, reads, 1, /*first_read_cycle=*/4));
}

TEST(RMatrixConditionTest, WeakerThanDatacyclePointwise) {
  // Property: whenever Datacycle accepts, R-Matrix accepts (same inputs).
  Rng rng(13);
  const uint32_t n = 5;
  for (int trial = 0; trial < 2000; ++trial) {
    McVector mc(n);
    for (ObjectId i = 0; i < n; ++i) mc.Set(i, rng.NextBounded(10));
    std::vector<ReadRecord> reads;
    const Cycle first = 1 + rng.NextBounded(8);
    Cycle cur = first;
    for (uint32_t k = 0; k < 1 + rng.NextBounded(3); ++k) {
      reads.push_back({static_cast<ObjectId>(rng.NextBounded(n)), cur});
      cur += rng.NextBounded(3);
    }
    const ObjectId target = static_cast<ObjectId>(rng.NextBounded(n));
    if (DatacycleReadCondition(mc, reads)) {
      EXPECT_TRUE(RMatrixReadCondition(mc, reads, target, first));
    }
  }
}

}  // namespace
}  // namespace bcc
