#include "sim/workload.h"

#include <gtest/gtest.h>

#include <set>

namespace bcc {
namespace {

TEST(ServerWorkloadTest, TxnsAreUpdateTxnsWithBoundedOps) {
  SimConfig c;
  ServerWorkload w(c, Rng(1));
  for (int i = 0; i < 500; ++i) {
    const ServerTxn txn = w.NextTxn();
    EXPECT_FALSE(txn.write_set.empty());
    EXPECT_LE(txn.read_set.size() + txn.write_set.size(), c.server_txn_length);
    std::set<ObjectId> reads(txn.read_set.begin(), txn.read_set.end());
    std::set<ObjectId> writes(txn.write_set.begin(), txn.write_set.end());
    EXPECT_EQ(reads.size(), txn.read_set.size());
    EXPECT_EQ(writes.size(), txn.write_set.size());
    for (ObjectId ob : txn.read_set) EXPECT_LT(ob, c.num_objects);
    for (ObjectId ob : txn.write_set) EXPECT_LT(ob, c.num_objects);
  }
}

TEST(ServerWorkloadTest, TxnIdsAreSequential) {
  SimConfig c;
  ServerWorkload w(c, Rng(2), /*first_id=*/10);
  EXPECT_EQ(w.NextTxn().id, 10u);
  EXPECT_EQ(w.NextTxn().id, 11u);
}

TEST(ServerWorkloadTest, ReadProbabilityShapesMix) {
  SimConfig c;
  c.server_read_probability = 0.0;  // all writes
  ServerWorkload w(c, Rng(3));
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(w.NextTxn().read_set.empty());
  }
  c.server_read_probability = 0.9;
  ServerWorkload w2(c, Rng(4));
  size_t reads = 0, writes = 0;
  for (int i = 0; i < 200; ++i) {
    const ServerTxn t = w2.NextTxn();
    reads += t.read_set.size();
    writes += t.write_set.size();
  }
  EXPECT_GT(reads, writes * 3);
}

TEST(ServerWorkloadTest, DeterministicIntervalMode) {
  SimConfig c;
  c.server_interval_exponential = false;
  ServerWorkload w(c, Rng(5));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(w.NextInterval(), c.server_txn_interval);
}

TEST(ServerWorkloadTest, ExponentialIntervalMeanRoughlyCorrect) {
  SimConfig c;
  ServerWorkload w(c, Rng(6));
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(w.NextInterval());
  EXPECT_NEAR(sum / n, 250000.0, 5000.0);
}

TEST(ClientWorkloadTest, ReadSetsAreDistinctAndInRange) {
  SimConfig c;
  c.client_txn_length = 6;
  ClientWorkload w(c, Rng(7));
  for (int i = 0; i < 200; ++i) {
    const auto reads = w.NextReadSet();
    ASSERT_EQ(reads.size(), 6u);
    std::set<ObjectId> uniq(reads.begin(), reads.end());
    EXPECT_EQ(uniq.size(), 6u);
    for (ObjectId ob : reads) EXPECT_LT(ob, c.num_objects);
  }
}

TEST(ClientWorkloadTest, DelaysArePositiveWithExpectedMeans) {
  SimConfig c;
  ClientWorkload w(c, Rng(8));
  double op_sum = 0, txn_sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const SimTime op = w.NextInterOpDelay();
    const SimTime txn = w.NextInterTxnDelay();
    EXPECT_GE(op, 1u);
    EXPECT_GE(txn, 1u);
    op_sum += static_cast<double>(op);
    txn_sum += static_cast<double>(txn);
  }
  EXPECT_NEAR(op_sum / n, 65536.0, 1500.0);
  EXPECT_NEAR(txn_sum / n, 131072.0, 3000.0);
}

}  // namespace
}  // namespace bcc
