#include "server/broadcast_server.h"

#include <gtest/gtest.h>

namespace bcc {
namespace {

BroadcastGeometry SmallGeometry() {
  // 4 objects, 100-bit payloads, 8-bit stamps, R-Matrix layout.
  return ComputeGeometry(Algorithm::kRMatrix, 4, 100, 8);
}

TEST(BroadcastServerTest, SnapshotCapturesCommittedState) {
  ServerTxnManager mgr(4);
  BroadcastServer server(4, SmallGeometry());
  mgr.ExecuteAndCommit(ServerTxn{1, {}, {2}}, 1);
  server.BeginCycle(2, 1000, mgr);
  EXPECT_EQ(server.snapshot().cycle, 2u);
  EXPECT_EQ(server.snapshot().values[2].writer, 1u);
  EXPECT_EQ(server.snapshot().mc_vector.At(2), 1u);
}

TEST(BroadcastServerTest, SnapshotIsImmutableAgainstLaterCommits) {
  ServerTxnManager mgr(4);
  BroadcastServer server(4, SmallGeometry());
  server.BeginCycle(1, 0, mgr);
  mgr.ExecuteAndCommit(ServerTxn{1, {}, {0}}, 1);  // during cycle 1
  // The on-air snapshot still shows the beginning-of-cycle state.
  EXPECT_EQ(server.snapshot().values[0].writer, kInitTxn);
  EXPECT_EQ(server.snapshot().mc_vector.At(0), 0u);
  server.BeginCycle(2, server.CycleEndTime(), mgr);
  EXPECT_EQ(server.snapshot().values[0].writer, 1u);
}

TEST(BroadcastServerTest, ObjectSlotTimes) {
  ServerTxnManager mgr(4);
  const BroadcastGeometry g = SmallGeometry();
  BroadcastServer server(4, g);
  server.BeginCycle(1, 0, mgr);
  for (ObjectId ob = 0; ob < 4; ++ob) {
    EXPECT_EQ(server.ObjectAvailableTime(ob), static_cast<SimTime>(ob + 1) * g.slot_bits);
  }
  EXPECT_EQ(server.CycleEndTime(), g.cycle_bits);
  EXPECT_EQ(server.ObjectAvailableTime(3), server.CycleEndTime());
}

TEST(BroadcastServerTest, CycleAtMapsTimesToCycles) {
  ServerTxnManager mgr(4);
  const BroadcastGeometry g = SmallGeometry();
  BroadcastServer server(4, g);
  server.BeginCycle(1, 0, mgr);
  EXPECT_EQ(server.CycleAt(0), 1u);
  EXPECT_EQ(server.CycleAt(g.cycle_bits - 1), 1u);
  EXPECT_EQ(server.CycleAt(g.cycle_bits), 2u);
  EXPECT_EQ(server.CycleAt(5 * g.cycle_bits + 3), 6u);
}

TEST(BroadcastServerTest, FMatrixSnapshotOnlyWhenMaintained) {
  TxnManagerOptions options;
  options.maintain_f_matrix = false;
  ServerTxnManager mgr(4, options);
  BroadcastServer server(4, SmallGeometry());
  server.BeginCycle(1, 0, mgr);
  EXPECT_EQ(server.snapshot().f_matrix.num_objects(), 0u);
  EXPECT_EQ(server.snapshot().mc_vector.num_objects(), 4u);
}

TEST(BroadcastServerTest, PartitionedSnapshotCarriesGroupMatrix) {
  ServerTxnManager mgr(4);
  BroadcastServer server(4, ComputeGeometry(Algorithm::kFMatrix, 4, 100, 8, 2));
  server.SetPartition(ObjectPartition::Blocks(4, 2));
  mgr.ExecuteAndCommit(ServerTxn{1, {}, {0}}, 1);
  server.BeginCycle(2, 100, mgr);
  ASSERT_TRUE(server.snapshot().group_matrix.has_value());
  EXPECT_EQ(server.snapshot().group_matrix->num_groups(), 2u);
  // ob0 written at cycle 1: group 0 row 0 reflects it.
  EXPECT_EQ(server.snapshot().group_matrix->At(0, 0), 1u);
}

}  // namespace
}  // namespace bcc
