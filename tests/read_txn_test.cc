#include "client/read_txn.h"

#include <gtest/gtest.h>

#include "client/cache.h"
#include "common/rng.h"
#include "server/broadcast_server.h"

namespace bcc {
namespace {

// Test fixture driving a tiny server and taking snapshots by hand.
class ReadTxnTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kObjects = 5;

  ReadTxnTest()
      : mgr_(kObjects),
        server_(kObjects, ComputeGeometry(Algorithm::kFMatrix, kObjects, 100, 8)) {}

  const CycleSnapshot& Snap(Cycle c) {
    server_.BeginCycle(c, c * 1000, mgr_);
    return server_.snapshot();
  }

  void Commit(TxnId id, std::vector<ObjectId> reads, std::vector<ObjectId> writes, Cycle c) {
    mgr_.ExecuteAndCommit(ServerTxn{id, std::move(reads), std::move(writes)}, c);
  }

  ServerTxnManager mgr_;
  BroadcastServer server_;
};

TEST_F(ReadTxnTest, FirstReadAlwaysSucceeds) {
  for (Algorithm a : kAllAlgorithms) {
    ReadOnlyTxnProtocol p(a);
    auto v = p.Read(Snap(1), 0);
    ASSERT_TRUE(v.ok()) << AlgorithmName(a);
    EXPECT_EQ(v->writer, kInitTxn);
    EXPECT_EQ(p.first_read_cycle(), 1u);
  }
}

TEST_F(ReadTxnTest, ReadsObserveBeginningOfCycleValues) {
  Commit(1, {}, {2}, /*cycle=*/1);
  ReadOnlyTxnProtocol p(Algorithm::kFMatrix);
  auto v = p.Read(Snap(2), 2);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->writer, 1u);
  EXPECT_EQ(v->cycle, 1u);
}

TEST_F(ReadTxnTest, DatacycleAbortsWhenAnyReadOverwritten) {
  ReadOnlyTxnProtocol p(Algorithm::kDatacycle);
  ASSERT_TRUE(p.Read(Snap(1), 0).ok());
  Commit(1, {}, {0}, 1);  // overwrites what we read
  // Any subsequent read aborts, even of an untouched object.
  EXPECT_TRUE(p.Read(Snap(2), 3).status().IsAborted());
}

TEST_F(ReadTxnTest, RMatrixSurvivesWhenTargetUnchangedSinceFirstRead) {
  ReadOnlyTxnProtocol r(Algorithm::kRMatrix);
  ReadOnlyTxnProtocol d(Algorithm::kDatacycle);
  ASSERT_TRUE(r.Read(Snap(1), 0).ok());
  ASSERT_TRUE(d.Read(Snap(1), 0).ok());
  Commit(1, {}, {0}, 1);
  // ob3 untouched since cycle 1 (the first read): R-Matrix proceeds,
  // Datacycle aborts.
  const CycleSnapshot& snap = Snap(2);
  EXPECT_TRUE(r.Read(snap, 3).ok());
  EXPECT_TRUE(d.Read(snap, 3).status().IsAborted());
}

TEST_F(ReadTxnTest, RMatrixAbortsWhenTargetAlsoChanged) {
  ReadOnlyTxnProtocol r(Algorithm::kRMatrix);
  ASSERT_TRUE(r.Read(Snap(1), 0).ok());
  Commit(1, {}, {0}, 1);
  Commit(2, {}, {3}, 1);
  EXPECT_TRUE(r.Read(Snap(2), 3).status().IsAborted());
}

TEST_F(ReadTxnTest, FMatrixIgnoresIndependentOverwrites) {
  // F-Matrix only aborts when the value being read *depends on* a
  // transaction that overwrote a previous read — an independent blind write
  // to the old object is harmless.
  ReadOnlyTxnProtocol f(Algorithm::kFMatrix);
  ASSERT_TRUE(f.Read(Snap(1), 0).ok());
  Commit(1, {}, {0}, 1);  // independent overwrite of ob0
  Commit(2, {}, {3}, 1);  // independent write to ob3
  EXPECT_TRUE(f.Read(Snap(2), 3).ok()) << "ob3's value does not depend on the ob0 writer";
}

TEST_F(ReadTxnTest, FMatrixAbortsOnDependentValue) {
  ReadOnlyTxnProtocol f(Algorithm::kFMatrix);
  ASSERT_TRUE(f.Read(Snap(1), 0).ok());
  // t1 overwrites ob0 and t2 reads ob0 then writes ob3: ob3's new value
  // depends on the overwriting transaction.
  Commit(1, {}, {0}, 1);
  Commit(2, {0}, {3}, 1);
  EXPECT_TRUE(f.Read(Snap(2), 3).status().IsAborted());
}

TEST_F(ReadTxnTest, TheoremOrderingDatacycleImpliesRMatrixImpliesFMatrix) {
  // Pointwise containment: on identical snapshots and read sequences, if
  // Datacycle's condition passes then R-Matrix's does, and if R-Matrix's
  // passes then F-Matrix's does (C(i,j) <= MC(i) and C(i,j) <= MC(j)).
  Rng rng(71);
  for (int trial = 0; trial < 300; ++trial) {
    ServerTxnManager mgr(kObjects);
    BroadcastServer server(kObjects, ComputeGeometry(Algorithm::kFMatrix, kObjects, 100, 8));
    ReadOnlyTxnProtocol f(Algorithm::kFMatrix);
    ReadOnlyTxnProtocol r(Algorithm::kRMatrix);
    ReadOnlyTxnProtocol d(Algorithm::kDatacycle);
    TxnId next_txn = 1;
    Cycle cycle = 1;
    bool r_alive = true, d_alive = true;
    for (int step = 0; step < 10; ++step) {
      // Random server activity.
      for (uint64_t k = rng.NextBounded(3); k > 0; --k) {
        const auto reads =
            rng.SampleWithoutReplacement(kObjects, static_cast<uint32_t>(rng.NextBounded(3)));
        const auto writes = rng.SampleWithoutReplacement(
            kObjects, 1 + static_cast<uint32_t>(rng.NextBounded(2)));
        mgr.ExecuteAndCommit(ServerTxn{next_txn++, reads, writes}, cycle);
      }
      ++cycle;
      server.BeginCycle(cycle, cycle * 1000, mgr);
      const ObjectId ob = static_cast<ObjectId>(rng.NextBounded(kObjects));
      const bool f_ok = f.Read(server.snapshot(), ob).ok();
      const bool r_ok = r_alive && r.Read(server.snapshot(), ob).ok();
      const bool d_ok = d_alive && d.Read(server.snapshot(), ob).ok();
      if (d_ok) {
        EXPECT_TRUE(r_ok) << "Datacycle passed but R-Matrix failed";
      }
      if (r_ok) {
        EXPECT_TRUE(f_ok) << "R-Matrix passed but F-Matrix failed";
      }
      if (!f_ok) break;  // keep the three read sets identical
      r_alive = r_ok;
      d_alive = d_ok;
      if (!r_ok || !d_ok) break;
    }
  }
}

TEST_F(ReadTxnTest, WireCodecSpuriousAbortsOnlyTightenConditions) {
  // With a tiny 2-bit codec, ancient entries alias forward; the protocol may
  // abort spuriously but must never accept a read the exact protocol would
  // reject.
  Rng rng(73);
  for (int trial = 0; trial < 200; ++trial) {
    ServerTxnManager mgr(kObjects);
    BroadcastServer server(kObjects, ComputeGeometry(Algorithm::kFMatrix, kObjects, 100, 2));
    ReadOnlyTxnProtocol exact(Algorithm::kFMatrix);
    ReadOnlyTxnProtocol coded(Algorithm::kFMatrix, CycleStampCodec(2));
    TxnId next_txn = 1;
    Cycle cycle = 1;
    for (int step = 0; step < 8; ++step) {
      if (rng.NextBernoulli(0.7)) {
        const auto writes = rng.SampleWithoutReplacement(
            kObjects, 1 + static_cast<uint32_t>(rng.NextBounded(2)));
        const auto reads =
            rng.SampleWithoutReplacement(kObjects, static_cast<uint32_t>(rng.NextBounded(3)));
        mgr.ExecuteAndCommit(ServerTxn{next_txn++, reads, writes}, cycle);
      }
      cycle += 1 + rng.NextBounded(5);  // jump cycles to force aliasing
      server.BeginCycle(cycle, cycle * 1000, mgr);
      const ObjectId ob = static_cast<ObjectId>(rng.NextBounded(kObjects));
      const bool exact_ok = exact.Read(server.snapshot(), ob).ok();
      const bool coded_ok = coded.Read(server.snapshot(), ob).ok();
      if (coded_ok) {
        EXPECT_TRUE(exact_ok) << "codec accepted a read the exact check rejects";
      }
      if (!exact_ok || !coded_ok) break;
    }
  }
}

TEST_F(ReadTxnTest, ResetClearsState) {
  ReadOnlyTxnProtocol p(Algorithm::kFMatrix);
  ASSERT_TRUE(p.Read(Snap(1), 0).ok());
  EXPECT_EQ(p.reads().size(), 1u);
  p.Reset();
  EXPECT_TRUE(p.reads().empty());
  EXPECT_EQ(p.first_read_cycle(), 0u);
  EXPECT_TRUE(p.values().empty());
}

TEST_F(ReadTxnTest, CommitReturnsReadCount) {
  ReadOnlyTxnProtocol p(Algorithm::kRMatrix);
  ASSERT_TRUE(p.Read(Snap(1), 0).ok());
  ASSERT_TRUE(p.Read(Snap(1), 1).ok());
  EXPECT_EQ(p.Commit(), 2u);
}

TEST_F(ReadTxnTest, FMatrixAbortReportsFirstFailingReadInRecordOrder) {
  // Early-exit regression for the vectorized read-condition scan: when
  // several recorded reads fail against the same column, the abort must be
  // attributed to the FIRST failing read in record order — the scan may not
  // run to the end and report a later conflict.
  ReadOnlyTxnProtocol p(Algorithm::kFMatrix);
  const CycleSnapshot& first = Snap(1);
  ASSERT_TRUE(p.Read(first, 0).ok());
  ASSERT_TRUE(p.Read(first, 1).ok());
  ASSERT_TRUE(p.Read(first, 2).ok());
  // Three same-cycle commits make ob4's value depend on overwrites of ob1
  // AND ob2 (reads 1 and 2 both fail); ob0 stays clean (read 0 passes).
  Commit(1, {}, {1}, 1);
  Commit(2, {}, {2}, 1);
  Commit(3, {1, 2}, {4}, 1);
  EXPECT_TRUE(p.Read(Snap(2), 4).status().IsAborted());
  EXPECT_EQ(p.last_abort().cause, AbortCause::kControlConflict);
  EXPECT_EQ(p.last_abort().ob_i, 1u) << "must be the first failing read, not a later one";
  EXPECT_EQ(p.last_abort().ob_j, 4u);
  EXPECT_EQ(p.last_abort().read_cycle, 1u);
  EXPECT_EQ(p.last_abort().c_ij, 1u);
}

TEST_F(ReadTxnTest, SameCycleReadsAlwaysConsistent) {
  // All reads within one cycle observe one atomic snapshot: no condition can
  // fail (matrix entries are < the current cycle).
  Commit(1, {}, {0, 1, 2, 3, 4}, 1);
  for (Algorithm a : kAllAlgorithms) {
    ReadOnlyTxnProtocol p(a);
    const CycleSnapshot& snap = Snap(2);
    for (ObjectId ob = 0; ob < kObjects; ++ob) {
      EXPECT_TRUE(p.Read(snap, ob).ok()) << AlgorithmName(a) << " ob" << ob;
    }
  }
}

}  // namespace
}  // namespace bcc
