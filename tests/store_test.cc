#include "server/store.h"

#include <gtest/gtest.h>

namespace bcc {
namespace {

TEST(VersionedStoreTest, InitialStateIsT0) {
  VersionedStore store(3);
  for (ObjectId ob = 0; ob < 3; ++ob) {
    EXPECT_EQ(store.Committed(ob).writer, kInitTxn);
    EXPECT_EQ(store.Committed(ob).value, 0u);
    EXPECT_EQ(store.Committed(ob).cycle, 0u);
  }
}

TEST(VersionedStoreTest, StagedWritesInvisibleUntilCommit) {
  VersionedStore store(2);
  store.StageWrite(0, /*writer=*/7);
  EXPECT_EQ(store.Committed(0).writer, kInitTxn);  // broadcast still sees t0
  EXPECT_TRUE(store.HasStagedWrites());
  store.CommitStaged(/*commit_cycle=*/4);
  EXPECT_EQ(store.Committed(0).writer, 7u);
  EXPECT_EQ(store.Committed(0).cycle, 4u);
  EXPECT_FALSE(store.HasStagedWrites());
}

TEST(VersionedStoreTest, ReadForStagingSeesOwnWrites) {
  VersionedStore store(2);
  store.StageWrite(0, 7);
  EXPECT_EQ(store.ReadForStaging(0).writer, 7u);
  EXPECT_EQ(store.ReadForStaging(1).writer, kInitTxn);
}

TEST(VersionedStoreTest, AbortDiscardsStagedWrites) {
  VersionedStore store(2);
  store.StageWrite(0, 7);
  store.StageWrite(1, 7);
  store.AbortStaged();
  EXPECT_FALSE(store.HasStagedWrites());
  EXPECT_EQ(store.Committed(0).writer, kInitTxn);
  EXPECT_EQ(store.Committed(1).writer, kInitTxn);
  // Next transaction commits cleanly.
  store.StageWrite(0, 9);
  store.CommitStaged(2);
  EXPECT_EQ(store.Committed(0).writer, 9u);
}

TEST(VersionedStoreTest, ValuesAreUniquePerWrite) {
  VersionedStore store(2);
  store.StageWrite(0, 1);
  store.CommitStaged(1);
  const uint64_t v1 = store.Committed(0).value;
  store.StageWrite(0, 2);
  store.CommitStaged(2);
  const uint64_t v2 = store.Committed(0).value;
  EXPECT_NE(v1, v2);
  EXPECT_NE(v1, 0u);
}

TEST(VersionedStoreTest, DoubleStageSameObjectKeepsLastWrite) {
  VersionedStore store(1);
  store.StageWrite(0, 3);
  const uint64_t first = store.ReadForStaging(0).value;
  store.StageWrite(0, 3);
  EXPECT_NE(store.ReadForStaging(0).value, first);
  store.CommitStaged(1);
  EXPECT_EQ(store.Committed(0).writer, 3u);
}

}  // namespace
}  // namespace bcc
