// Multiple concurrent clients. Read-only clients never interact (the
// paper's justification for simulating one); with the update extension they
// contend through the server's validator.

#include <gtest/gtest.h>

#include "sim/broadcast_sim.h"

namespace bcc {
namespace {

SimConfig MultiConfig(Algorithm a, uint32_t clients, double update_fraction,
                      uint64_t seed = 13) {
  SimConfig c;
  c.algorithm = a;
  c.num_objects = 25;
  c.object_size_bits = 512;
  c.client_txn_length = 3;
  c.server_txn_length = 4;
  c.server_txn_interval = 50000;
  c.mean_inter_op_delay = 2000;
  c.mean_inter_txn_delay = 4000;
  c.num_client_txns = 120;
  c.warmup_txns = 40;
  c.num_clients = clients;
  c.client_update_fraction = update_fraction;
  c.seed = seed;
  return c;
}

TEST(MultiClientSimTest, ReadOnlyClientsRunToCompletion) {
  for (uint32_t clients : {1u, 2u, 5u, 10u}) {
    auto s = RunSimulation(MultiConfig(Algorithm::kFMatrix, clients, 0.0));
    ASSERT_TRUE(s.ok()) << s.status();
    EXPECT_EQ(s->total_txns, 120u);
    EXPECT_EQ(s->measured_txns, 80u);
  }
}

TEST(MultiClientSimTest, MoreClientsFinishSoonerInWallClock) {
  // Clients progress in parallel, so the same total transaction count
  // completes in less simulated time.
  auto one = RunSimulation(MultiConfig(Algorithm::kRMatrix, 1, 0.0));
  auto eight = RunSimulation(MultiConfig(Algorithm::kRMatrix, 8, 0.0));
  ASSERT_TRUE(one.ok() && eight.ok());
  EXPECT_LT(eight->sim_end_time, one->sim_end_time);
}

TEST(MultiClientSimTest, DeterministicGivenSeed) {
  auto a = RunSimulation(MultiConfig(Algorithm::kFMatrix, 4, 0.3, 7));
  auto b = RunSimulation(MultiConfig(Algorithm::kFMatrix, 4, 0.3, 7));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->sim_end_time, b->sim_end_time);
  EXPECT_EQ(a->total_restarts, b->total_restarts);
  EXPECT_EQ(a->client_update_commits, b->client_update_commits);
}

TEST(MultiClientSimTest, UpdateContentionGrowsWithClients) {
  // With everyone updating a small hot database, more concurrent clients
  // mean more validator rejects + read-condition aborts per transaction.
  SimConfig small = MultiConfig(Algorithm::kFMatrix, 1, 1.0, 3);
  small.num_objects = 10;
  SimConfig big = small;
  big.num_clients = 10;
  auto one = RunSimulation(small);
  auto ten = RunSimulation(big);
  ASSERT_TRUE(one.ok() && ten.ok());
  const double one_conflicts =
      static_cast<double>(one->client_update_rejects + one->total_restarts);
  const double ten_conflicts =
      static_cast<double>(ten->client_update_rejects + ten->total_restarts);
  EXPECT_GT(ten_conflicts, one_conflicts);
}

TEST(MultiClientSimTest, OracleAuditPassesWithManyMixedClients) {
  for (Algorithm a : {Algorithm::kFMatrix, Algorithm::kRMatrix, Algorithm::kDatacycle}) {
    SimConfig c = MultiConfig(a, 5, 0.3, 19);
    c.num_client_txns = 60;
    c.warmup_txns = 20;
    c.record_history = true;
    BroadcastSim sim(c);
    ASSERT_TRUE(sim.Run().ok());
    EXPECT_EQ(sim.VerifyOracle(), Status::OK()) << AlgorithmName(a);
  }
}

TEST(MultiClientSimTest, PerClientCachesAreIndependent) {
  SimConfig c = MultiConfig(Algorithm::kFMatrix, 3, 0.0, 23);
  c.num_objects = 6;
  c.enable_cache = true;
  c.cache_currency_bound = 20'000'000;
  auto s = RunSimulation(c);
  ASSERT_TRUE(s.ok());
  EXPECT_GT(s->cache_hits, 0u);
}

TEST(MultiClientSimTest, ZeroClientsRejected) {
  SimConfig c = MultiConfig(Algorithm::kFMatrix, 0, 0.0);
  EXPECT_FALSE(c.Validate().ok());
}

}  // namespace
}  // namespace bcc
