#include "graph/digraph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"

namespace bcc {
namespace {

TEST(DigraphTest, EmptyGraphIsAcyclic) {
  Digraph g;
  EXPECT_FALSE(g.HasCycle());
  EXPECT_TRUE(g.TopologicalSort().ok());
  EXPECT_TRUE(g.TopologicalSort()->empty());
}

TEST(DigraphTest, AddNodeIdempotent) {
  Digraph g;
  EXPECT_EQ(g.AddNode(7), g.AddNode(7));
  EXPECT_EQ(g.NumNodes(), 1u);
}

TEST(DigraphTest, DuplicateEdgesIgnored) {
  Digraph g;
  g.AddEdge(1, 2);
  g.AddEdge(1, 2);
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(DigraphTest, ChainIsAcyclicWithCorrectTopo) {
  Digraph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  EXPECT_FALSE(g.HasCycle());
  const auto order = g.TopologicalSort();
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(*order, (std::vector<uint32_t>{1, 2, 3, 4}));
}

TEST(DigraphTest, TriangleCycleDetected) {
  Digraph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 1);
  EXPECT_TRUE(g.HasCycle());
  EXPECT_FALSE(g.TopologicalSort().ok());
}

TEST(DigraphTest, SelfLoopIsCycle) {
  Digraph g;
  g.AddEdge(5, 5);
  EXPECT_TRUE(g.HasCycle());
}

TEST(DigraphTest, TwoNodeCycle) {
  Digraph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 1);
  EXPECT_TRUE(g.HasCycle());
}

TEST(DigraphTest, TopologicalSortRespectsAllEdges) {
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    // Random DAG: edges only low -> high, relabeled.
    Digraph g;
    const uint32_t n = 15;
    for (uint32_t i = 0; i < n; ++i) g.AddNode(i * 13 % 101);
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t j = i + 1; j < n; ++j) {
        if (rng.NextBernoulli(0.2)) {
          g.AddEdge(i * 13 % 101, j * 13 % 101);
          edges.emplace_back(i * 13 % 101, j * 13 % 101);
        }
      }
    }
    const auto order = g.TopologicalSort();
    ASSERT_TRUE(order.ok());
    auto pos = [&](uint32_t key) {
      return std::find(order->begin(), order->end(), key) - order->begin();
    };
    for (const auto& [from, to] : edges) EXPECT_LT(pos(from), pos(to));
  }
}

TEST(DigraphTest, SuccessorsReturnsKeys) {
  Digraph g;
  g.AddEdge(10, 20);
  g.AddEdge(10, 30);
  auto succ = g.Successors(10);
  std::sort(succ.begin(), succ.end());
  EXPECT_EQ(succ, (std::vector<uint32_t>{20, 30}));
  EXPECT_TRUE(g.Successors(99).empty());
}

TEST(DigraphTest, SccFindsComponents) {
  Digraph g;
  // SCC {1,2,3}, SCC {4,5}, singleton {6}.
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 1);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  g.AddEdge(5, 4);
  g.AddEdge(5, 6);
  auto sccs = g.StronglyConnectedComponents();
  std::vector<std::set<uint32_t>> sets;
  for (auto& c : sccs) sets.emplace_back(c.begin(), c.end());
  EXPECT_EQ(sets.size(), 3u);
  EXPECT_NE(std::find(sets.begin(), sets.end(), std::set<uint32_t>{1, 2, 3}), sets.end());
  EXPECT_NE(std::find(sets.begin(), sets.end(), std::set<uint32_t>{4, 5}), sets.end());
  EXPECT_NE(std::find(sets.begin(), sets.end(), std::set<uint32_t>{6}), sets.end());
}

TEST(DigraphTest, SccCountMatchesCycleTest) {
  Rng rng(23);
  for (int trial = 0; trial < 100; ++trial) {
    Digraph g;
    const uint32_t n = 8;
    for (uint32_t i = 0; i < n; ++i) g.AddNode(i);
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t j = 0; j < n; ++j) {
        if (i != j && rng.NextBernoulli(0.15)) g.AddEdge(i, j);
      }
    }
    const bool cyclic = g.HasCycle();
    const bool any_big_scc = [&] {
      for (const auto& c : g.StronglyConnectedComponents()) {
        if (c.size() > 1) return true;
      }
      return false;
    }();
    // Without self-loops, cyclic <=> some SCC larger than 1.
    EXPECT_EQ(cyclic, any_big_scc);
  }
}

TEST(DigraphTest, Reachability) {
  Digraph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddNode(4);
  EXPECT_TRUE(g.Reachable(1, 3));
  EXPECT_TRUE(g.Reachable(2, 2));
  EXPECT_FALSE(g.Reachable(3, 1));
  EXPECT_FALSE(g.Reachable(1, 4));
}

}  // namespace
}  // namespace bcc
