// SparseFMatrix vs dense FMatrix oracle: the sparse form is a representation
// change only, so every observable — At, read-condition scans, dirty-column
// drains, batch application — must be bit-identical to the dense matrix fed
// the same commit stream (including ts in {2, 3} wraparound regimes where
// absolute cycles far exceed the codec window).

#include "matrix/sparse_f_matrix.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "matrix/kernels.h"
#include "matrix/wire.h"

namespace bcc {
namespace {

constexpr uint32_t kSeeds = 25;

std::vector<ObjectId> RandomSet(Rng& rng, uint32_t n, uint32_t max_size) {
  const uint32_t k = static_cast<uint32_t>(rng.NextBounded(max_size + 1));
  return rng.SampleWithoutReplacement(n, k);
}

/// Drives `commits` cycles of random commits through both representations.
struct Pair {
  FMatrix dense;
  SparseFMatrix sparse;

  explicit Pair(uint32_t n) : dense(n), sparse(n) {}

  void RandomCommit(Rng& rng, Cycle cycle, uint32_t max_set) {
    const std::vector<ObjectId> rs = RandomSet(rng, dense.num_objects(), max_set);
    std::vector<ObjectId> ws;
    while (ws.empty()) ws = RandomSet(rng, dense.num_objects(), max_set);
    dense.ApplyCommit(rs, ws, cycle);
    sparse.ApplyCommit(rs, ws, cycle);
  }
};

TEST(SparseFMatrixTest, StartsAllZeroAndEmpty) {
  SparseFMatrix c(4);
  for (ObjectId i = 0; i < 4; ++i) {
    for (ObjectId j = 0; j < 4; ++j) EXPECT_EQ(c.At(i, j), 0u);
  }
  EXPECT_EQ(c.nnz(), 0u);
  EXPECT_EQ(c.nonempty_columns(), 0u);
}

TEST(SparseFMatrixTest, PaperExample4) {
  SparseFMatrix c(2);
  const ObjectId ob1 = 0, ob2 = 1;
  c.ApplyCommit({}, std::vector<ObjectId>{ob1, ob2}, 1);
  c.ApplyCommit(std::vector<ObjectId>{ob1}, std::vector<ObjectId>{ob1}, 2);
  c.ApplyCommit(std::vector<ObjectId>{ob2}, std::vector<ObjectId>{ob2}, 3);
  EXPECT_EQ(c.At(ob1, ob1), 2u);
  EXPECT_EQ(c.At(ob2, ob2), 3u);
  EXPECT_EQ(c.At(ob1, ob2), 1u);
  EXPECT_EQ(c.At(ob2, ob1), 1u);
}

TEST(SparseFMatrixTest, WriteSetColumnsShareOnePayload) {
  // Theorem 2 writes identical content into every WS column; the sparse
  // matrix must materialize that content once.
  SparseFMatrix c(8);
  c.ApplyCommit({}, std::vector<ObjectId>{1, 4, 6}, 1);
  EXPECT_EQ(c.ColumnData(1).get(), c.ColumnData(4).get());
  EXPECT_EQ(c.ColumnData(4).get(), c.ColumnData(6).get());
  EXPECT_NE(c.ColumnData(0).get(), c.ColumnData(1).get());
}

TEST(SparseFMatrixTest, EmptyWriteSetIsNoOp) {
  SparseFMatrix c(4);
  c.ApplyCommit(std::vector<ObjectId>{0, 1}, {}, 7);
  EXPECT_EQ(c.nnz(), 0u);
  SparseFMatrix fresh(4);
  EXPECT_TRUE(c == fresh);
}

TEST(SparseFMatrixTest, MatchesDenseOracleAcrossSeeds) {
  for (uint32_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(seed + 1);
    const uint32_t n = 8 + static_cast<uint32_t>(rng.NextBounded(25));
    Pair pair(n);
    for (Cycle cycle = 1; cycle <= 60; ++cycle) {
      const uint32_t commits = 1 + static_cast<uint32_t>(rng.NextBounded(3));
      for (uint32_t c = 0; c < commits; ++c) pair.RandomCommit(rng, cycle, 5);
    }
    ASSERT_TRUE(pair.sparse == pair.dense) << "seed " << seed;
    ASSERT_TRUE(pair.sparse.ToDense() == pair.dense) << "seed " << seed;
    ASSERT_TRUE(SparseFMatrix::FromDense(pair.dense) == pair.sparse) << "seed " << seed;

    // nnz accounting must agree with a from-scratch recount.
    const SparseFMatrix recount = SparseFMatrix::FromDense(pair.sparse.ToDense());
    uint64_t nnz = 0;
    for (ObjectId j = 0; j < n; ++j) nnz += pair.sparse.ColumnNnz(j);
    EXPECT_EQ(pair.sparse.nnz(), nnz) << "seed " << seed;
    EXPECT_LE(recount.nnz(), pair.sparse.nnz()) << "seed " << seed;
  }
}

TEST(SparseFMatrixTest, ReadConditionScanMatchesDenseKernel) {
  for (uint32_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(100 + seed);
    const uint32_t n = 6 + static_cast<uint32_t>(rng.NextBounded(20));
    Pair pair(n);
    std::vector<Cycle> column;
    for (Cycle cycle = 1; cycle <= 40; ++cycle) {
      pair.RandomCommit(rng, cycle, 4);
      // Random read sets with cycles around the current one so both pass and
      // fail outcomes occur.
      for (int t = 0; t < 4; ++t) {
        std::vector<ReadRecord> reads;
        for (ObjectId ob : RandomSet(rng, n, 5)) {
          reads.push_back({ob, cycle - rng.NextBounded(std::min<uint64_t>(cycle, 6))});
        }
        const ObjectId j = static_cast<ObjectId>(rng.NextBounded(n));
        pair.dense.Snapshot();  // exercise CoW alongside
        column.assign(pair.dense.Column(j).begin(), pair.dense.Column(j).end());
        const size_t want = KernelReadConditionScan(column.data(), reads.data(), reads.size());
        ASSERT_EQ(pair.sparse.ReadConditionScan(reads, j), want)
            << "seed " << seed << " cycle " << cycle;
        ASSERT_EQ(pair.sparse.ReadCondition(reads, j), want == kReadConditionPass);
      }
    }
  }
}

TEST(SparseFMatrixTest, DirtyTrackingMatchesDenseFirstTouchOrder) {
  for (uint32_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(200 + seed);
    const uint32_t n = 10 + static_cast<uint32_t>(rng.NextBounded(20));
    Pair pair(n);
    pair.dense.EnableDirtyTracking();
    pair.sparse.EnableDirtyTracking();
    std::vector<ObjectId> got, want;
    for (Cycle cycle = 1; cycle <= 30; ++cycle) {
      const uint32_t commits = 1 + static_cast<uint32_t>(rng.NextBounded(4));
      for (uint32_t c = 0; c < commits; ++c) pair.RandomCommit(rng, cycle, 5);
      pair.dense.DrainTouchedColumns(want);
      pair.sparse.DrainTouchedColumns(got);
      ASSERT_EQ(got, want) << "seed " << seed << " cycle " << cycle;
    }
  }
}

TEST(SparseFMatrixTest, BatchApplicationIsBitIdenticalToSequential) {
  for (uint32_t seed = 0; seed < 5; ++seed) {
    Rng rng(300 + seed);
    const uint32_t n = 12;
    SparseFMatrix batched(n), sequential(n);
    for (Cycle cycle = 1; cycle <= 20; ++cycle) {
      std::vector<CommitSets> commits(1 + rng.NextBounded(4));
      for (CommitSets& c : commits) {
        c.read_set = RandomSet(rng, n, 4);
        while (c.write_set.empty()) c.write_set = RandomSet(rng, n, 4);
        sequential.ApplyCommit(c.read_set, c.write_set, cycle);
      }
      batched.ApplyCommitBatch(commits, cycle);
    }
    ASSERT_TRUE(batched == sequential) << "seed " << seed;
  }
}

TEST(SparseFMatrixTest, SetMatchesDenseIncludingErasure) {
  for (uint32_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(400 + seed);
    const uint32_t n = 9;
    Pair pair(n);
    for (int step = 0; step < 200; ++step) {
      const ObjectId i = static_cast<ObjectId>(rng.NextBounded(n));
      const ObjectId j = static_cast<ObjectId>(rng.NextBounded(n));
      const Cycle c = rng.NextBounded(4);  // small range so values collide/erase
      pair.dense.Set(i, j, c);
      pair.sparse.Set(i, j, c);
    }
    ASSERT_TRUE(pair.sparse == pair.dense) << "seed " << seed;
  }
}

TEST(SparseFMatrixTest, FromDenseUsesMostFrequentValueAsFloor) {
  // A column dominated by one nonzero value (the channel-refresh decode
  // shape) must compress to a nonzero floor with few explicit entries.
  FMatrix dense(16);
  for (ObjectId i = 0; i < 16; ++i) dense.Set(i, 3, 40);
  dense.Set(5, 3, 41);
  dense.Set(9, 3, 2);
  const SparseFMatrix sparse = SparseFMatrix::FromDense(dense);
  EXPECT_TRUE(sparse == dense);
  EXPECT_EQ(sparse.ColumnData(3)->floor, 40u);
  EXPECT_EQ(sparse.ColumnNnz(3), 2u);
}

TEST(SparseFMatrixTest, CompactModuloPreservesResiduesAndDecodes) {
  for (unsigned ts_bits : {2u, 3u, 8u}) {
    const CycleStampCodec codec(ts_bits);
    for (uint32_t seed = 0; seed < kSeeds; ++seed) {
      Rng rng(500 + seed);
      const uint32_t n = 8 + static_cast<uint32_t>(rng.NextBounded(12));
      Pair pair(n);
      // Run well past the wraparound horizon for small ts.
      const Cycle last = 20 + 6 * codec.max_cycles();
      for (Cycle cycle = 1; cycle <= last; ++cycle) pair.RandomCommit(rng, cycle, 4);

      SparseFMatrix compacted = pair.sparse;
      compacted.EnableDirtyTracking();
      const uint64_t nnz_before = compacted.nnz();
      const uint64_t dropped = compacted.CompactModulo(codec, last);
      EXPECT_EQ(compacted.nnz() + dropped, nnz_before);

      for (ObjectId i = 0; i < n; ++i) {
        for (ObjectId j = 0; j < n; ++j) {
          const Cycle before = pair.sparse.At(i, j);
          const Cycle after = compacted.At(i, j);
          // Same residue -> every wire-codec consumer behaves identically,
          // at the compaction cycle and any later one.
          ASSERT_EQ(codec.Encode(before), codec.Encode(after))
              << "ts " << ts_bits << " seed " << seed;
          // And the stored value is exactly the windowed decode at `last`.
          ASSERT_EQ(after, codec.Decode(codec.Encode(before), last));
        }
      }

      // Compacting an already-compacted matrix at the same cycle is a no-op.
      SparseFMatrix again = compacted;
      EXPECT_EQ(again.CompactModulo(codec, last), 0u);
      EXPECT_TRUE(again == compacted);
    }
  }
}

TEST(SparseFMatrixTest, ControlBitsSublinearVsDense) {
  // Fixed workload, growing n: the dense broadcast grows as n^2 while the
  // sparse encoding tracks nnz, which the workload (not n) bounds.
  const unsigned ts_bits = 8;
  uint64_t prev_sparse = 0;
  for (uint32_t n : {1u << 8, 1u << 10, 1u << 12}) {
    Rng rng(7);
    SparseFMatrix sparse(n);
    for (Cycle cycle = 1; cycle <= 50; ++cycle) {
      const std::vector<ObjectId> rs = RandomSet(rng, n, 4);
      std::vector<ObjectId> ws;
      while (ws.empty()) ws = RandomSet(rng, n, 4);
      sparse.ApplyCommit(rs, ws, cycle);
    }
    const uint64_t sparse_bits = SparseMatrixControlBits(sparse, ts_bits);
    const uint64_t dense_bits = FullMatrixControlBits(n, ts_bits);
    EXPECT_LT(sparse_bits * 16, dense_bits) << "n " << n;
    if (prev_sparse != 0) {
      // Quadrupling n must not even double the sparse footprint (only the
      // per-entry index width grows).
      EXPECT_LT(sparse_bits, prev_sparse * 2) << "n " << n;
    }
    prev_sparse = sparse_bits;
  }
}

TEST(SparseFMatrixTest, ControlBitsFormula) {
  // 32-bit header; per nonempty column: 4-bit id + ts + 32-bit count; per
  // entry: 4-bit row + ts.
  EXPECT_EQ(SparseMatrixControlBits(0, 0, 16, 8), 32u);
  EXPECT_EQ(SparseMatrixControlBits(3, 2, 16, 8),
            32u + 2 * (4 + 8 + 32) + 3 * (4 + 8));
  // n = 1 needs no index bits at all.
  EXPECT_EQ(SparseMatrixControlBits(1, 1, 1, 2), 32u + (0 + 2 + 32) + (0 + 2));
}

TEST(SparseWireTest, DiffColumnsMatchesDenseOracle) {
  for (unsigned ts_bits : {2u, 3u, 8u}) {
    const CycleStampCodec codec(ts_bits);
    for (uint32_t seed = 0; seed < kSeeds; ++seed) {
      Rng rng(600 + seed);
      const uint32_t n = 8 + static_cast<uint32_t>(rng.NextBounded(10));
      Pair pair(n);
      pair.dense.EnableDirtyTracking();
      pair.sparse.EnableDirtyTracking();
      FMatrix prev_dense(n);
      SparseFMatrix prev_sparse(n);
      std::vector<ObjectId> touched_dense, touched_sparse;
      for (Cycle cycle = 1; cycle <= 30; ++cycle) {
        const uint32_t commits = 1 + static_cast<uint32_t>(rng.NextBounded(3));
        for (uint32_t c = 0; c < commits; ++c) pair.RandomCommit(rng, cycle, 4);
        pair.dense.DrainTouchedColumns(touched_dense);
        pair.sparse.DrainTouchedColumns(touched_sparse);
        ASSERT_EQ(touched_dense, touched_sparse);
        const auto want =
            DeltaCodec::DiffColumns(prev_dense, pair.dense, touched_dense, codec);
        const auto got =
            DeltaCodec::DiffColumns(prev_sparse, pair.sparse, touched_sparse, codec);
        ASSERT_EQ(got.size(), want.size()) << "seed " << seed << " cycle " << cycle;
        for (size_t k = 0; k < want.size(); ++k) {
          ASSERT_EQ(got[k].row, want[k].row);
          ASSERT_EQ(got[k].col, want[k].col);
          ASSERT_EQ(got[k].residue, want[k].residue);
        }
        // Fold the delta into both bases via the two Apply overloads; the
        // bases must stay value-identical (at small ts the decode aliases,
        // identically on both sides).
        DeltaCodec::Apply(&prev_dense, want, codec, cycle);
        DeltaCodec::Apply(&prev_sparse, got, codec, cycle);
        ASSERT_TRUE(prev_sparse == prev_dense) << "seed " << seed << " cycle " << cycle;
      }
    }
  }
}

TEST(SparseWireTest, ApplyHandlesDuplicateEntriesLastWins) {
  const CycleStampCodec codec(8);
  FMatrix dense(4);
  SparseFMatrix sparse(4);
  const std::vector<DeltaCodec::Entry> entries = {
      {1, 2, codec.Encode(5)}, {1, 2, codec.Encode(9)}, {3, 2, codec.Encode(7)}};
  DeltaCodec::Apply(&dense, entries, codec, 10);
  DeltaCodec::Apply(&sparse, entries, codec, 10);
  EXPECT_TRUE(sparse == dense);
  EXPECT_EQ(sparse.At(1, 2), 9u);
}

TEST(SparseWireTest, PackMatrixByteIdenticalToDense) {
  for (unsigned ts_bits : {2u, 3u, 8u}) {
    const CycleStampCodec codec(ts_bits);
    Rng rng(700 + ts_bits);
    Pair pair(13);
    for (Cycle cycle = 1; cycle <= 25; ++cycle) pair.RandomCommit(rng, cycle, 4);
    EXPECT_EQ(PackMatrix(pair.sparse, codec), PackMatrix(pair.dense, codec));
  }
}

TEST(SparseFMatrixTest, MaterializeColumnMatchesDense) {
  Rng rng(42);
  Pair pair(14);
  for (Cycle cycle = 1; cycle <= 25; ++cycle) pair.RandomCommit(rng, cycle, 4);
  std::vector<Cycle> got;
  for (ObjectId j = 0; j < 14; ++j) {
    pair.sparse.MaterializeColumn(j, got);
    const std::span<const Cycle> want = pair.dense.Column(j);
    ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end())) << "col " << j;
  }
}

}  // namespace
}  // namespace bcc
