#include "client/cache.h"

#include <gtest/gtest.h>

#include "client/read_txn.h"

namespace bcc {
namespace {

CacheEntry MakeEntry(uint64_t value, Cycle cycle, SimTime cached_time) {
  CacheEntry e;
  e.version = ObjectVersion{value, 1, cycle};
  e.cycle = cycle;
  e.cached_time = cached_time;
  e.mc_entry = cycle;
  return e;
}

TEST(QuasiCacheTest, MissOnEmpty) {
  QuasiCache cache(0, 1000);
  EXPECT_FALSE(cache.Lookup(0, 0).has_value());
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(QuasiCacheTest, HitWithinCurrencyBound) {
  QuasiCache cache(0, 1000);
  cache.Insert(3, MakeEntry(7, 2, 100));
  auto hit = cache.Lookup(3, 1100);  // age 1000 == bound: still fresh
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->version.value, 7u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(QuasiCacheTest, StaleEntriesDropLocally) {
  QuasiCache cache(0, 1000);
  cache.Insert(3, MakeEntry(7, 2, 100));
  EXPECT_FALSE(cache.Lookup(3, 1101).has_value());  // age 1001 > T
  EXPECT_EQ(cache.stale_drops(), 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(QuasiCacheTest, PerObjectCurrencyBounds) {
  QuasiCache cache(0, 1000);
  cache.SetCurrencyBound(5, 50);
  cache.Insert(5, MakeEntry(1, 1, 0));
  cache.Insert(6, MakeEntry(2, 1, 0));
  EXPECT_FALSE(cache.Lookup(5, 100).has_value());  // tight bound
  EXPECT_TRUE(cache.Lookup(6, 100).has_value());   // default bound
}

TEST(QuasiCacheTest, LruEvictionAtCapacity) {
  QuasiCache cache(2, 1000000);
  cache.Insert(0, MakeEntry(1, 1, 0));
  cache.Insert(1, MakeEntry(2, 1, 0));
  ASSERT_TRUE(cache.Lookup(0, 1).has_value());  // touch 0: 1 becomes LRU
  cache.Insert(2, MakeEntry(3, 1, 0));          // evicts 1
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.Lookup(0, 2).has_value());
  EXPECT_FALSE(cache.Lookup(1, 2).has_value());
  EXPECT_TRUE(cache.Lookup(2, 2).has_value());
}

TEST(QuasiCacheTest, InsertOverwritesInPlace) {
  QuasiCache cache(2, 1000000);
  cache.Insert(0, MakeEntry(1, 1, 0));
  cache.Insert(0, MakeEntry(9, 3, 10));
  EXPECT_EQ(cache.size(), 1u);
  auto hit = cache.Lookup(0, 11);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->version.value, 9u);
  EXPECT_EQ(hit->cycle, 3u);
}

TEST(QuasiCacheTest, ClearResetsContents) {
  QuasiCache cache(0, 1000);
  cache.Insert(0, MakeEntry(1, 1, 0));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(0, 1).has_value());
}

// Cache-served reads through the protocol (Section 3.3 semantics).
class CachedReadTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kObjects = 4;

  CachedReadTest()
      : mgr_(kObjects),
        server_(kObjects, ComputeGeometry(Algorithm::kFMatrix, kObjects, 100, 8)) {}

  const CycleSnapshot& Snap(Cycle c) {
    server_.BeginCycle(c, c * 1000, mgr_);
    return server_.snapshot();
  }

  CacheEntry EntryFor(ObjectId ob, const CycleSnapshot& snap) {
    CacheEntry e;
    e.version = snap.values[ob];
    e.cycle = snap.cycle;
    e.cached_time = snap.start_time;
    const auto col = snap.f_matrix.Column(ob);
    e.column.assign(col.begin(), col.end());
    e.mc_entry = snap.mc_vector.At(ob);
    return e;
  }

  ServerTxnManager mgr_;
  BroadcastServer server_;
};

TEST_F(CachedReadTest, FMatrixCachedReadValidatesAgainstStoredColumn) {
  mgr_.ExecuteAndCommit(ServerTxn{1, {}, {0}}, 1);
  const CacheEntry cached = EntryFor(0, Snap(2));  // cache ob0 at cycle 2

  // Later transaction reads fresh ob1 at cycle 5, then the cached ob0.
  mgr_.ExecuteAndCommit(ServerTxn{2, {}, {1}}, 3);
  ReadOnlyTxnProtocol p(Algorithm::kFMatrix);
  const CycleSnapshot& now = Snap(5);
  ASSERT_TRUE(p.Read(now, 1).ok());
  auto v = p.ReadFromCache(cached, 0, now);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->writer, 1u);
  // The cached read is recorded at its cached cycle.
  EXPECT_EQ(p.reads().back().cycle, 2u);
}

TEST_F(CachedReadTest, FMatrixCachedReadAbortsOnDependency) {
  // Cache ob1 at cycle 4 whose value depends on an overwrite of ob0 that
  // happened after the transaction read ob0.
  ReadOnlyTxnProtocol p(Algorithm::kFMatrix);
  ASSERT_TRUE(p.Read(Snap(1), 0).ok());          // read ob0 at cycle 1
  mgr_.ExecuteAndCommit(ServerTxn{1, {}, {0}}, 1);   // overwrite ob0
  mgr_.ExecuteAndCommit(ServerTxn{2, {0}, {1}}, 2);  // ob1 depends on it
  const CacheEntry cached = EntryFor(1, Snap(4));
  EXPECT_TRUE(p.ReadFromCache(cached, 1, Snap(5)).status().IsAborted());
}

TEST_F(CachedReadTest, RMatrixCachedReadUsesStoredEntry) {
  mgr_.ExecuteAndCommit(ServerTxn{1, {}, {2}}, 1);
  const CacheEntry cached = EntryFor(2, Snap(2));
  ReadOnlyTxnProtocol p(Algorithm::kRMatrix);
  // Fresh read at cycle 6 first.
  mgr_.ExecuteAndCommit(ServerTxn{2, {}, {3}}, 4);
  const CycleSnapshot& now = Snap(6);
  ASSERT_TRUE(p.Read(now, 0).ok());
  // ob2 is unchanged since it was cached (current MC(2)=1 < cached cycle 2)
  // and nothing we read was overwritten: the cached read is served and is
  // recorded as a fresh read at the current cycle.
  auto v = p.ReadFromCache(cached, 2, now);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(p.reads().back().cycle, 6u);
}

TEST_F(CachedReadTest, RMatrixRejectsStaleCachedValue) {
  mgr_.ExecuteAndCommit(ServerTxn{1, {}, {2}}, 1);
  const CacheEntry cached = EntryFor(2, Snap(2));
  // ob2 is overwritten after caching: the reduced vector cannot vouch for
  // the stale value, so the cached read must be refused.
  mgr_.ExecuteAndCommit(ServerTxn{2, {}, {2}}, 3);
  ReadOnlyTxnProtocol p(Algorithm::kRMatrix);
  EXPECT_TRUE(p.ReadFromCache(cached, 2, Snap(5)).status().IsAborted());
}

TEST_F(CachedReadTest, FMatrixStaleCachedReadAfterFreshReadChecksReverseDirection) {
  // The fresh read's value depends on a write to the cached object that
  // happened AFTER the cached cycle: serving the stale cache entry would
  // create a cycle, so the protocol must refuse even though the paper's
  // forward condition alone would pass.
  const CacheEntry cached = EntryFor(0, Snap(1));        // ob0 as of cycle 1
  mgr_.ExecuteAndCommit(ServerTxn{1, {}, {0}}, 2);       // ob0 overwritten
  mgr_.ExecuteAndCommit(ServerTxn{2, {0}, {1}}, 3);      // ob1 depends on it
  ReadOnlyTxnProtocol p(Algorithm::kFMatrix);
  ASSERT_TRUE(p.Read(Snap(5), 1).ok());                  // fresh ob1
  EXPECT_TRUE(p.ReadFromCache(cached, 0, Snap(5)).status().IsAborted());
}

TEST_F(CachedReadTest, DatacycleRejectsCacheReads) {
  const CacheEntry cached = EntryFor(0, Snap(1));
  ReadOnlyTxnProtocol p(Algorithm::kDatacycle);
  EXPECT_TRUE(p.ReadFromCache(cached, 0, Snap(2)).status().IsAborted());
}

}  // namespace
}  // namespace bcc
