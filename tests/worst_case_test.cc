// Appendix D, Theorem 8: every valid quadrant specification is realized by
// some execution history — verified by replaying the constructed history
// through both the from-definition and the incremental matrix builders.

#include "matrix/worst_case.h"

#include <gtest/gtest.h>

#include "cc/conflict_serializability.h"
#include "matrix/f_matrix.h"

namespace bcc {
namespace {

void ExpectRealizes(const QuadrantSpec& spec) {
  auto realized = RealizeQuadrant(spec);
  ASSERT_TRUE(realized.ok()) << realized.status();
  ASSERT_TRUE(realized->history.Validate().ok());
  EXPECT_TRUE(realized->history.IsSerial());

  const FMatrix c = FMatrixFromDefinition(realized->history, realized->commit_cycles,
                                          spec.num_objects);
  const uint32_t h = spec.half();
  for (uint32_t i = 0; i < h; ++i) {
    for (uint32_t j = 0; j < h; ++j) {
      EXPECT_EQ(c.At(i, j), spec.At(i, j))
          << "entry (" << i << "," << j << ") of\n"
          << realized->history.ToString();
    }
  }

  // The incremental builder agrees (commits replayed in history order).
  FMatrix incremental(spec.num_objects);
  const History& hist = realized->history;
  for (TxnId t : hist.CommittedUpdateTxns()) {
    incremental.ApplyCommit(hist.Txn(t).read_set, hist.Txn(t).write_set,
                            realized->commit_cycles.at(t));
  }
  EXPECT_TRUE(incremental == c);
}

TEST(WorstCaseTest, PaperStyleSpecWithMaxDiagonals) {
  // The counting argument's regime: every diagonal at max_cycles - 1.
  QuadrantSpec spec;
  spec.num_objects = 7;  // half = 3
  spec.entries = {
      9, 4, 7,  //
      0, 9, 2,  //
      5, 9, 9,  //
  };
  ExpectRealizes(spec);
}

TEST(WorstCaseTest, ZeroColumnMeansInitialValues) {
  QuadrantSpec spec;
  spec.num_objects = 7;
  spec.entries = {
      5, 0, 3,  //
      0, 0, 0,  //
      2, 0, 6,  //
  };
  ExpectRealizes(spec);
}

TEST(WorstCaseTest, RejectsColumnDominanceViolation) {
  QuadrantSpec spec;
  spec.num_objects = 5;  // half = 2
  spec.entries = {
      3, 5,  //
      1, 4,  // spec(0,1) = 5 > spec(1,1) = 4
  };
  EXPECT_TRUE(RealizeQuadrant(spec).status().IsInvalidArgument());
}

TEST(WorstCaseTest, RejectsRowDominanceViolation) {
  QuadrantSpec spec;
  spec.num_objects = 5;
  spec.entries = {
      3, 4,  // spec(0,1) = 4 > spec(0,0) = 3
      1, 9,  //
  };
  EXPECT_TRUE(RealizeQuadrant(spec).status().IsInvalidArgument());
}

TEST(WorstCaseTest, RejectsEvenOrTinyDatabases) {
  QuadrantSpec spec;
  spec.num_objects = 6;
  spec.entries.assign(4, 0);
  EXPECT_TRUE(RealizeQuadrant(spec).status().IsInvalidArgument());
  spec.num_objects = 1;
  spec.entries.clear();
  EXPECT_TRUE(RealizeQuadrant(spec).status().IsInvalidArgument());
}

TEST(WorstCaseTest, RealizedHistoriesAreConflictSerializable) {
  Rng rng(41);
  const QuadrantSpec spec = RandomQuadrantSpec(9, 12, &rng);
  auto realized = RealizeQuadrant(spec);
  ASSERT_TRUE(realized.ok());
  EXPECT_TRUE(IsConflictSerializable(realized->history));
}

struct RandomCase {
  uint32_t num_objects;
  Cycle max_cycle;
  uint64_t seed;
  int trials;
};

class WorstCasePropertyTest : public ::testing::TestWithParam<RandomCase> {};

TEST_P(WorstCasePropertyTest, RandomSpecsRealizeExactly) {
  const RandomCase& tc = GetParam();
  Rng rng(tc.seed);
  for (int trial = 0; trial < tc.trials; ++trial) {
    ExpectRealizes(RandomQuadrantSpec(tc.num_objects, tc.max_cycle, &rng));
  }
}

INSTANTIATE_TEST_SUITE_P(Random, WorstCasePropertyTest,
                         ::testing::Values(RandomCase{5, 6, 1, 50},
                                           RandomCase{7, 10, 2, 50},
                                           RandomCase{9, 4, 3, 30},
                                           RandomCase{13, 20, 4, 20}),
                         [](const ::testing::TestParamInfo<RandomCase>& info) {
                           return "n" + std::to_string(info.param.num_objects) + "_s" +
                                  std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace bcc
