#include "sim/experiment.h"

#include <gtest/gtest.h>

#include <sstream>

namespace bcc {
namespace {

ExperimentSpec SmallSpec() {
  ExperimentSpec spec;
  spec.title = "test sweep";
  spec.x_label = "client txn length";
  spec.base.num_objects = 15;
  spec.base.object_size_bits = 512;
  spec.base.server_txn_interval = 30000;
  spec.base.mean_inter_op_delay = 2000;
  spec.base.mean_inter_txn_delay = 4000;
  spec.base.num_client_txns = 30;
  spec.base.warmup_txns = 10;
  spec.x_values = {2, 3};
  spec.apply = [](SimConfig* c, double x) {
    c->client_txn_length = static_cast<uint32_t>(x);
  };
  spec.algorithms = {Algorithm::kDatacycle, Algorithm::kFMatrix};
  return spec;
}

TEST(ExperimentTest, GridShapeMatchesSpec) {
  auto result = RunExperiment(SmallSpec());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->summaries.size(), 2u);
  ASSERT_EQ(result->summaries[0].size(), 2u);
  for (size_t a = 0; a < 2; ++a) {
    for (size_t x = 0; x < 2; ++x) {
      EXPECT_GT(result->At(a, x).measured_txns, 0u);
    }
  }
}

TEST(ExperimentTest, ApplySetsSweptParameter) {
  // Longer client transactions must take longer on average.
  ExperimentSpec spec = SmallSpec();
  spec.x_values = {1, 6};
  auto result = RunExperiment(spec);
  ASSERT_TRUE(result.ok());
  for (size_t a = 0; a < spec.algorithms.size(); ++a) {
    EXPECT_LT(result->At(a, 0).mean_response_time, result->At(a, 1).mean_response_time);
  }
}

TEST(ExperimentTest, ParallelAndSerialAgree) {
  ExperimentSpec spec = SmallSpec();
  spec.parallelism = 1;
  auto serial = RunExperiment(spec);
  spec.parallelism = 4;
  auto parallel = RunExperiment(spec);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  for (size_t a = 0; a < spec.algorithms.size(); ++a) {
    for (size_t x = 0; x < spec.x_values.size(); ++x) {
      EXPECT_EQ(serial->At(a, x).mean_response_time, parallel->At(a, x).mean_response_time);
      EXPECT_EQ(serial->At(a, x).sim_end_time, parallel->At(a, x).sim_end_time);
    }
  }
}

TEST(ExperimentTest, InvalidConfigSurfacesError) {
  ExperimentSpec spec = SmallSpec();
  spec.apply = [](SimConfig* c, double) { c->client_txn_length = 0; };
  EXPECT_FALSE(RunExperiment(spec).ok());
}

TEST(ExperimentTest, TablesRenderAllCells) {
  auto result = RunExperiment(SmallSpec());
  ASSERT_TRUE(result.ok());
  std::ostringstream response, restart, csv;
  PrintResponseTable(*result, response);
  PrintRestartTable(*result, restart);
  PrintCsv(*result, csv);
  EXPECT_NE(response.str().find("test sweep"), std::string::npos);
  EXPECT_NE(response.str().find("Datacycle"), std::string::npos);
  EXPECT_NE(response.str().find("F-Matrix"), std::string::npos);
  EXPECT_NE(restart.str().find("restarts"), std::string::npos);
  // CSV: header + 4 cells + trailing blank line.
  int lines = 0;
  for (char ch : csv.str()) lines += ch == '\n';
  EXPECT_EQ(lines, 6);
}

}  // namespace
}  // namespace bcc
