// Multi-speed broadcast-disk extension: skewed access + hot objects
// broadcast more often. Consistency must be unaffected; latency for
// hot-heavy clients should improve.

#include <gtest/gtest.h>

#include "sim/broadcast_sim.h"

namespace bcc {
namespace {

SimConfig SkewedConfig(Algorithm a, uint32_t hot_freq, uint64_t seed = 5) {
  SimConfig c;
  c.algorithm = a;
  c.num_objects = 40;
  c.object_size_bits = 1024;
  c.client_txn_length = 4;
  c.server_txn_length = 4;
  c.server_txn_interval = 100000;
  c.mean_inter_op_delay = 3000;
  c.mean_inter_txn_delay = 6000;
  c.num_client_txns = 120;
  c.warmup_txns = 40;
  c.hot_set_size = 8;
  c.hot_broadcast_frequency = hot_freq;
  c.client_hot_access_fraction = 0.8;
  c.server_hot_access_fraction = 0.8;
  c.seed = seed;
  return c;
}

TEST(MultiDiskSimTest, RunsForAllAlgorithms) {
  for (Algorithm a : kAllAlgorithms) {
    auto s = RunSimulation(SkewedConfig(a, 4));
    ASSERT_TRUE(s.ok()) << AlgorithmName(a) << ": " << s.status();
    EXPECT_EQ(s->total_txns, 120u);
  }
}

TEST(MultiDiskSimTest, HotSpeedupReducesResponseForSkewedClients) {
  // Averaged over seeds: quadrupling the hot set's broadcast rate should
  // cut mean response for a client that reads the hot set 80% of the time,
  // despite the longer major cycle.
  double base_sum = 0, fast_sum = 0;
  for (uint64_t seed : {1u, 2u, 3u}) {
    auto base = RunSimulation(SkewedConfig(Algorithm::kRMatrix, 1, seed));
    auto fast = RunSimulation(SkewedConfig(Algorithm::kRMatrix, 4, seed));
    ASSERT_TRUE(base.ok() && fast.ok());
    base_sum += base->mean_response_time;
    fast_sum += fast->mean_response_time;
  }
  EXPECT_LT(fast_sum, base_sum);
}

TEST(MultiDiskSimTest, ConsistencyAuditHoldsWithMultiSpeedDisk) {
  for (Algorithm a : {Algorithm::kFMatrix, Algorithm::kRMatrix, Algorithm::kDatacycle}) {
    SimConfig c = SkewedConfig(a, 3, 11);
    c.num_objects = 12;
    c.hot_set_size = 4;
    c.num_client_txns = 40;
    c.warmup_txns = 10;
    c.record_history = true;
    BroadcastSim sim(c);
    ASSERT_TRUE(sim.Run().ok());
    EXPECT_EQ(sim.VerifyOracle(), Status::OK()) << AlgorithmName(a);
  }
}

TEST(MultiDiskSimTest, ValidationRejectsBadSkewConfig) {
  SimConfig c = SkewedConfig(Algorithm::kFMatrix, 2);
  c.hot_set_size = 0;  // skew without a hot set
  EXPECT_FALSE(c.Validate().ok());

  c = SkewedConfig(Algorithm::kFMatrix, 2);
  c.client_hot_access_fraction = 1.5;
  EXPECT_FALSE(c.Validate().ok());

  c = SkewedConfig(Algorithm::kFMatrix, 2);
  c.hot_set_size = 100;  // > num_objects
  EXPECT_FALSE(c.Validate().ok());
}

TEST(MultiDiskSimTest, FlatDiskUnaffectedByFrequencyOne) {
  // hot_broadcast_frequency == 1 must behave exactly like the flat disk.
  SimConfig with_hot = SkewedConfig(Algorithm::kFMatrix, 1, 7);
  SimConfig flat = with_hot;
  flat.client_hot_access_fraction = -1.0;
  flat.server_hot_access_fraction = -1.0;
  flat.hot_set_size = 0;
  flat.hot_broadcast_frequency = 1;
  // Different workload skews, but both must complete with flat-cycle length.
  auto a = RunSimulation(with_hot);
  auto b = RunSimulation(flat);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->total_txns, b->total_txns);
}

}  // namespace
}  // namespace bcc
