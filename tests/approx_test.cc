#include "cc/approx.h"

#include <gtest/gtest.h>

#include "cc/update_consistency.h"
#include "history/history_parser.h"

namespace bcc {
namespace {

History Example1() {
  return MustParseHistory(
      "r1(IBM) w2(IBM) c2 r3(IBM) r3(Sun) w4(Sun) c4 r1(Sun) c1 c3");
}

History Example2() {
  return MustParseHistory(
      "r1(IBM) w2(IBM) c2 r3(IBM) r3(Sun) c3 w4(Sun) c4 r1(Sun) w1(DEC) c1");
}

TEST(ApproxTest, AcceptsExample1) {
  const ApproxResult r = CheckApprox(Example1());
  EXPECT_TRUE(r.accepted) << r.reason;
}

TEST(ApproxTest, AcceptsExample2) {
  const ApproxResult r = CheckApprox(Example2());
  EXPECT_TRUE(r.accepted) << r.reason;
}

TEST(ApproxTest, RejectsNonSerializableUpdates) {
  const History h = MustParseHistory("r1(x) r2(x) w1(x) w2(x) c1 c2");
  const ApproxResult r = CheckApprox(h);
  EXPECT_FALSE(r.accepted);
  EXPECT_NE(r.reason.find("conflict serializable"), std::string::npos);
}

TEST(ApproxTest, RejectsInconsistentReadOnlyView) {
  const History h = MustParseHistory("r3(x) w1(x) c1 r2(x) w2(y) c2 r3(y) c3");
  const ApproxResult r = CheckApprox(h);
  EXPECT_FALSE(r.accepted);
  EXPECT_NE(r.reason.find("t3"), std::string::npos);
}

TEST(ApproxTest, Theorem6ProperSubsetWitness) {
  // Appendix C: legal but rejected by APPROX (ww cycle among updates that
  // view serializability forgives).
  const History h = MustParseHistory(
      "r1(ob1) r2(ob2) w1(ob3) w2(ob3) w2(ob4) w1(ob4) w3(ob3) w3(ob4) c1 c2 c3");
  EXPECT_FALSE(ApproxAccepts(h));
  EXPECT_TRUE(IsLegal(h));
}

TEST(ApproxTest, SerializationGraphNodesAreLiveSansInit) {
  const History h = Example1();
  const Digraph s1 = BuildTxnSerializationGraph(h, 1);
  EXPECT_TRUE(s1.HasNode(1));
  EXPECT_TRUE(s1.HasNode(4));
  EXPECT_FALSE(s1.HasNode(kInitTxn));
  EXPECT_FALSE(s1.HasNode(2));  // t2 not in LIVE(t1)
}

TEST(ApproxTest, SerializationGraphXArcs) {
  const History h = Example1();
  const Digraph s1 = BuildTxnSerializationGraph(h, 1);
  EXPECT_TRUE(s1.HasEdge(4, 1));  // reads-from
}

TEST(ApproxTest, SerializationGraphZArcs) {
  // t1 reads x then live t2 writes x: anti-dependency arc t1 -> t2 must
  // appear when t2 is in LIVE(t1) (here via y).
  const History h = MustParseHistory("r1(x) w2(x) w2(y) c2 r1(y) c1");
  const Digraph s1 = BuildTxnSerializationGraph(h, 1);
  EXPECT_TRUE(s1.HasEdge(1, 2));  // Z arc
  EXPECT_TRUE(s1.HasEdge(2, 1));  // X arc (reads y from t2)
  EXPECT_TRUE(s1.HasCycle());
  EXPECT_FALSE(ApproxAccepts(h));
}

TEST(ApproxTest, SerializationGraphYArcs) {
  // ww ordering between two live writers.
  const History h = MustParseHistory("w1(x) w1(y) c1 w2(x) r2(y) w2(z) c2 r3(z) r3(x) c3");
  // LIVE(t3) = {t3, t2 (z), t2 reads y from t1 -> t1}; also r3(x) reads
  // from t2. Y arc t1 -> t2 from w1(x) before w2(x).
  const Digraph s3 = BuildTxnSerializationGraph(h, 3);
  EXPECT_TRUE(s3.HasEdge(1, 2));
  EXPECT_FALSE(s3.HasCycle());
  EXPECT_TRUE(ApproxAccepts(h));
}

TEST(ApproxTest, AbortedReadOnlySkipped) {
  const History h = MustParseHistory("r3(x) w1(x) c1 r2(x) w2(y) c2 r3(y) a3");
  EXPECT_TRUE(ApproxAccepts(h));
}

TEST(ApproxTest, ActiveReadOnlyChecked) {
  const History h = MustParseHistory("r3(x) w1(x) c1 r2(x) w2(y) c2 r3(y)");
  EXPECT_FALSE(ApproxAccepts(h));
}

TEST(ApproxTest, EmptyAndReadOnlyHistoriesAccepted) {
  EXPECT_TRUE(ApproxAccepts(History{}));
  EXPECT_TRUE(ApproxAccepts(MustParseHistory("r1(x) c1 r2(x) c2")));
}

TEST(ApproxTest, IndependentReadersSeeDifferentOrdersAccepted) {
  // The core motivation (Section 2.3): two read-only transactions may see
  // t2 and t4 in different orders without harm.
  const History h = Example1();
  const Digraph s1 = BuildTxnSerializationGraph(h, 1);
  const Digraph s3 = BuildTxnSerializationGraph(h, 3);
  EXPECT_FALSE(s1.HasCycle());
  EXPECT_FALSE(s3.HasCycle());
}

}  // namespace
}  // namespace bcc
