#include "common/status.h"

#include <gtest/gtest.h>

#include "common/statusor.h"

namespace bcc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  const Status s = Status::Aborted("read-condition failed");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsAborted());
  EXPECT_EQ(s.message(), "read-condition failed");
  EXPECT_EQ(s.ToString(), "Aborted: read-condition failed");
}

TEST(StatusTest, OkCodeNormalizesMessageAway) {
  const Status s(StatusCode::kOk, "ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 9; ++c) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::OutOfRange("boom"); };
  auto wrapper = [&]() -> Status {
    BCC_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kOutOfRange);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, AssignOrReturnBindsValue) {
  auto get = []() -> StatusOr<int> { return 5; };
  auto use = [&]() -> StatusOr<int> {
    BCC_ASSIGN_OR_RETURN(const int x, get());
    return x + 1;
  };
  ASSERT_TRUE(use().ok());
  EXPECT_EQ(*use(), 6);
}

TEST(StatusOrTest, AssignOrReturnPropagatesError) {
  auto get = []() -> StatusOr<int> { return Status::Internal("nope"); };
  auto use = [&]() -> StatusOr<int> {
    BCC_ASSIGN_OR_RETURN(const int x, get());
    return x + 1;
  };
  EXPECT_EQ(use().status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace bcc
