#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace bcc {
namespace {

TEST(SimMetricsTest, WarmupTxnsExcluded) {
  SimMetrics m(/*warmup_txns=*/2);
  m.RecordClientTxn(0, 1000, 0, false);   // warmup
  m.RecordClientTxn(0, 2000, 1, false);   // warmup
  m.RecordClientTxn(0, 300, 2, false);    // measured
  m.RecordClientTxn(0, 500, 4, false);    // measured
  const SimSummary s = m.Summarize(10, 9999, 0, 0);
  EXPECT_EQ(s.measured_txns, 2u);
  EXPECT_EQ(s.total_txns, 4u);
  EXPECT_DOUBLE_EQ(s.mean_response_time, 400.0);
  EXPECT_DOUBLE_EQ(s.restart_ratio, 3.0);
  EXPECT_EQ(s.total_restarts, 6u);
}

TEST(SimMetricsTest, CensoredTxnsCounted) {
  SimMetrics m(0);
  m.RecordClientTxn(0, 100, 50, true);
  m.RecordClientTxn(0, 100, 0, false);
  const SimSummary s = m.Summarize(1, 100, 0, 0);
  EXPECT_EQ(s.censored_txns, 1u);
}

TEST(SimMetricsTest, QuantilesFromMeasuredWindow) {
  SimMetrics m(0);
  for (int i = 1; i <= 100; ++i) m.RecordClientTxn(0, static_cast<SimTime>(i * 10), 0, false);
  const SimSummary s = m.Summarize(1, 1000, 0, 0);
  EXPECT_NEAR(s.response_p50, 500.0, 20.0);
  EXPECT_NEAR(s.response_p95, 950.0, 20.0);
}

TEST(SimMetricsTest, ServerCommitsTracked) {
  SimMetrics m(0);
  m.RecordServerCommit();
  m.RecordServerCommit();
  const SimSummary s = m.Summarize(3, 50, 7, 9);
  EXPECT_EQ(s.server_commits, 2u);
  EXPECT_EQ(s.cycles_elapsed, 3u);
  EXPECT_EQ(s.sim_end_time, 50u);
  EXPECT_EQ(s.cache_hits, 7u);
  EXPECT_EQ(s.cache_misses, 9u);
}

TEST(SimMetricsTest, EmptyMeasurementWindowIsZeroed) {
  SimMetrics m(10);
  m.RecordClientTxn(0, 100, 0, false);
  const SimSummary s = m.Summarize(1, 100, 0, 0);
  EXPECT_EQ(s.measured_txns, 0u);
  EXPECT_EQ(s.mean_response_time, 0.0);
}

TEST(SimSummaryTest, ToStringContainsKeyFields) {
  SimMetrics m(0);
  m.RecordClientTxn(0, 1234, 2, false);
  const std::string str = m.Summarize(5, 1234, 0, 0).ToString();
  EXPECT_NE(str.find("response="), std::string::npos);
  EXPECT_NE(str.find("restarts/txn="), std::string::npos);
  EXPECT_NE(str.find("cycles=5"), std::string::npos);
}

}  // namespace
}  // namespace bcc
