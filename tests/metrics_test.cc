#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace bcc {
namespace {

TEST(SimMetricsTest, WarmupTxnsExcluded) {
  SimMetrics m(/*warmup_txns=*/2);
  m.RecordClientTxn(0, 1000, 0, false);   // warmup
  m.RecordClientTxn(0, 2000, 1, false);   // warmup
  m.RecordClientTxn(0, 300, 2, false);    // measured
  m.RecordClientTxn(0, 500, 4, false);    // measured
  const SimSummary s = m.Summarize(10, 9999, 0, 0);
  EXPECT_EQ(s.measured_txns, 2u);
  EXPECT_EQ(s.total_txns, 4u);
  EXPECT_DOUBLE_EQ(s.mean_response_time, 400.0);
  EXPECT_DOUBLE_EQ(s.restart_ratio, 3.0);
  EXPECT_EQ(s.total_restarts, 6u);
}

TEST(SimMetricsTest, CensoredTxnsCounted) {
  SimMetrics m(0);
  m.RecordClientTxn(0, 100, 50, true);
  m.RecordClientTxn(0, 100, 0, false);
  const SimSummary s = m.Summarize(1, 100, 0, 0);
  EXPECT_EQ(s.censored_txns, 1u);
}

TEST(SimMetricsTest, QuantilesFromMeasuredWindow) {
  SimMetrics m(0);
  for (int i = 1; i <= 100; ++i) m.RecordClientTxn(0, static_cast<SimTime>(i * 10), 0, false);
  const SimSummary s = m.Summarize(1, 1000, 0, 0);
  EXPECT_NEAR(s.response_p50, 500.0, 20.0);
  EXPECT_NEAR(s.response_p95, 950.0, 20.0);
}

TEST(SimMetricsTest, ReservoirQuantilesTrackExactOnLargeStreams) {
  // Way past kReservoirCapacity: quantiles come from the Algorithm R sample
  // and must stay close to the exact stream quantiles.
  const uint64_t n = 8 * SimMetrics::kReservoirCapacity;
  SimMetrics m(0);
  for (uint64_t i = 0; i < n; ++i) {
    // A fixed pseudo-random permutation pattern of [10, 10 + n): exact
    // p50 = 10 + n/2, exact p95 = 10 + 0.95 n.
    const uint64_t v = (i * 7919 + 13) % n;
    m.RecordClientTxn(0, static_cast<SimTime>(10 + v), 0, false);
  }
  const SimSummary s = m.Summarize(1, 1, 0, 0);
  EXPECT_EQ(s.measured_txns, n);
  // 5% relative tolerance: ~6x the sampling standard error of a 4096-element
  // reservoir, so this never flakes, but unbounded drift would fail.
  EXPECT_NEAR(s.response_p50, 10.0 + 0.50 * static_cast<double>(n), 0.05 * n);
  EXPECT_NEAR(s.response_p95, 10.0 + 0.95 * static_cast<double>(n), 0.05 * n);
}

TEST(SimMetricsTest, ReservoirIsDeterministic) {
  // The replacement RNG is seeded by a fixed constant, never the workload
  // seed: two collectors fed the same stream report bit-identical quantiles.
  auto run = [] {
    SimMetrics m(0);
    for (uint64_t i = 0; i < 3 * SimMetrics::kReservoirCapacity; ++i) {
      m.RecordClientTxn(0, static_cast<SimTime>(1 + (i * 2654435761u) % 100000), 0, false);
    }
    return m.Summarize(1, 1, 0, 0);
  };
  const SimSummary a = run();
  const SimSummary b = run();
  EXPECT_EQ(a.response_p50, b.response_p50);
  EXPECT_EQ(a.response_p95, b.response_p95);
}

TEST(SimMetricsTest, BelowCapacityQuantilesAreExact) {
  // Under the capacity the reservoir is just the full sample: quantiles
  // match the closed-form values with no sampling error at all.
  SimMetrics m(0);
  for (int i = 1; i <= 1000; ++i) m.RecordClientTxn(0, static_cast<SimTime>(i), 0, false);
  const SimSummary s = m.Summarize(1, 1, 0, 0);
  EXPECT_NEAR(s.response_p50, 500.0, 2.0);
  EXPECT_NEAR(s.response_p95, 950.0, 2.0);
}

TEST(SimMetricsTest, AbortCausesFlowIntoSummary) {
  SimMetrics m(0);
  m.RecordAbort(AbortCause::kControlConflict);
  m.RecordAbort(AbortCause::kControlConflict);
  m.RecordAbort(AbortCause::kUplinkReject);
  m.RecordClientTxn(0, 100, 3, false);
  const SimSummary s = m.Summarize(1, 100, 0, 0);
  EXPECT_EQ(s.abort_causes.Count(AbortCause::kControlConflict), 2u);
  EXPECT_EQ(s.abort_causes.Count(AbortCause::kUplinkReject), 1u);
  EXPECT_EQ(s.abort_causes.TotalAborts(), 3u);
  EXPECT_NE(s.ToString().find("aborts("), std::string::npos);
}

TEST(SimSummaryTest, ToStringOmitsZeroExtensionCounters) {
  SimMetrics m(0);
  m.RecordClientTxn(0, 100, 0, false);
  const std::string str = m.Summarize(1, 100, 0, 0).ToString();
  EXPECT_EQ(str.find("cacheHits="), std::string::npos);
  EXPECT_EQ(str.find("clientUpdateCommits="), std::string::npos);
  EXPECT_EQ(str.find("aborts("), std::string::npos);
}

TEST(SimSummaryTest, ToStringEmitsNonzeroExtensionCounters) {
  SimMetrics m(0);
  m.RecordClientUpdateCommit();
  m.RecordClientUpdateReject();
  m.RecordClientTxn(0, 100, 0, false);
  const std::string str = m.Summarize(1, 100, 5, 2).ToString();
  EXPECT_NE(str.find("cacheHits=5"), std::string::npos);
  EXPECT_NE(str.find("cacheMisses=2"), std::string::npos);
  EXPECT_NE(str.find("clientUpdateCommits=1"), std::string::npos);
  EXPECT_NE(str.find("clientUpdateRejects=1"), std::string::npos);
}

TEST(SimMetricsTest, ServerCommitsTracked) {
  SimMetrics m(0);
  m.RecordServerCommit();
  m.RecordServerCommit();
  const SimSummary s = m.Summarize(3, 50, 7, 9);
  EXPECT_EQ(s.server_commits, 2u);
  EXPECT_EQ(s.cycles_elapsed, 3u);
  EXPECT_EQ(s.sim_end_time, 50u);
  EXPECT_EQ(s.cache_hits, 7u);
  EXPECT_EQ(s.cache_misses, 9u);
}

TEST(SimMetricsTest, EmptyMeasurementWindowIsZeroed) {
  SimMetrics m(10);
  m.RecordClientTxn(0, 100, 0, false);
  const SimSummary s = m.Summarize(1, 100, 0, 0);
  EXPECT_EQ(s.measured_txns, 0u);
  EXPECT_EQ(s.mean_response_time, 0.0);
}

TEST(SimSummaryTest, ToStringContainsKeyFields) {
  SimMetrics m(0);
  m.RecordClientTxn(0, 1234, 2, false);
  const std::string str = m.Summarize(5, 1234, 0, 0).ToString();
  EXPECT_NE(str.find("response="), std::string::npos);
  EXPECT_NE(str.find("restarts/txn="), std::string::npos);
  EXPECT_NE(str.find("cycles=5"), std::string::npos);
}

}  // namespace
}  // namespace bcc
