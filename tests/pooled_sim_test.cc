// End-to-end wiring of the parallel update engine into both simulation
// engines: with update_scheme != seq, each cycle's server transactions run
// on the thread-pooled TxnProcessor and their serialization order is folded
// at the cycle boundary. The oracle audit (record_history) then checks the
// same currency/consistency invariants as the sequential path.

#include <gtest/gtest.h>

#include <tuple>

#include "sim/broadcast_sim.h"
#include "sim/concurrent_sim.h"

namespace bcc {
namespace {

SimConfig PooledConfig(UpdateScheme scheme, uint64_t seed = 42) {
  SimConfig c;
  c.algorithm = Algorithm::kFMatrix;
  c.num_objects = 20;
  c.object_size_bits = 512;
  c.client_txn_length = 3;
  c.server_txn_length = 4;
  c.server_txn_interval = 40000;
  c.mean_inter_op_delay = 2000;
  c.mean_inter_txn_delay = 4000;
  c.num_client_txns = 60;
  c.warmup_txns = 20;
  c.seed = seed;
  c.update_scheme = scheme;
  c.update_workers = 2;
  return c;
}

const UpdateScheme kPooledSchemes[] = {UpdateScheme::kTwoPhaseLocking, UpdateScheme::kOcc,
                                       UpdateScheme::kMvcc};

TEST(PooledSimTest, DesRunsToCompletionUnderEveryScheme) {
  for (UpdateScheme scheme : kPooledSchemes) {
    SCOPED_TRACE(std::string(UpdateSchemeName(scheme)));
    BroadcastSim sim(PooledConfig(scheme));
    auto s = sim.Run();
    ASSERT_TRUE(s.ok()) << s.status();
    EXPECT_EQ(s->total_txns, 60u);
    EXPECT_GT(s->server_commits, 0u);
    // Every staged server transaction was folded into the manager.
    EXPECT_EQ(sim.manager().num_committed(), s->server_commits);
  }
}

TEST(PooledSimTest, DesOracleAuditPassesUnderEveryScheme) {
  for (UpdateScheme scheme : kPooledSchemes) {
    SCOPED_TRACE(std::string(UpdateSchemeName(scheme)));
    SimConfig config = PooledConfig(scheme);
    config.record_history = true;
    config.num_client_txns = 40;
    config.warmup_txns = 10;
    BroadcastSim sim(config);
    ASSERT_TRUE(sim.Run().ok());
    const Status audit = sim.VerifyOracle();
    EXPECT_TRUE(audit.ok()) << audit.ToString();
  }
}

TEST(PooledSimTest, PoolInterleavingNeverLosesOrDuplicatesCommits) {
  // The pool's interleavings (and hence the serialization order within a
  // batch) may vary between runs, but the *set* of committed transactions is
  // the deterministic DES commit stream: every staged transaction retries
  // until it commits, and the fold happens at the same cycle boundary.
  for (UpdateScheme scheme : kPooledSchemes) {
    SCOPED_TRACE(std::string(UpdateSchemeName(scheme)));
    auto run = [&](uint64_t seed) {
      BroadcastSim sim(PooledConfig(scheme, seed));
      auto s = sim.Run();
      EXPECT_TRUE(s.ok());
      EXPECT_EQ(sim.manager().num_committed(), s->server_commits);
      return s->server_commits;
    };
    EXPECT_EQ(run(7), run(7));
  }
}

TEST(PooledSimTest, ConcurrentEngineRunsUnderEveryScheme) {
  for (UpdateScheme scheme : kPooledSchemes) {
    SCOPED_TRACE(std::string(UpdateSchemeName(scheme)));
    SimConfig config = PooledConfig(scheme);
    config.stop_after_cycles = 30;
    ConcurrentSim sim(config);
    auto s = sim.Run();
    ASSERT_TRUE(s.ok()) << s.status();
    EXPECT_EQ(s->cycles, 30u);
    EXPECT_GT(s->server_commits, 0u);
    EXPECT_EQ(sim.manager().num_committed(), s->server_commits);
  }
}

TEST(PooledSimTest, ValidationAcceptsPooledClientUpdates) {
  SimConfig config = PooledConfig(UpdateScheme::kOcc);
  config.client_update_fraction = 0.5;
  config.client_update_writes = 2;
  EXPECT_TRUE(config.Validate().ok());
  config.update_workers = 0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
}

SimConfig MixedClientConfig(UpdateScheme scheme, uint64_t seed = 42) {
  SimConfig c = PooledConfig(scheme, seed);
  c.num_clients = 3;
  c.client_update_fraction = 0.4;
  c.client_update_writes = 2;
  return c;
}

TEST(PooledSimTest, DesMixedClientsRunToCompletionUnderEveryScheme) {
  for (UpdateScheme scheme : kPooledSchemes) {
    SCOPED_TRACE(std::string(UpdateSchemeName(scheme)));
    BroadcastSim sim(MixedClientConfig(scheme));
    auto s = sim.Run();
    ASSERT_TRUE(s.ok()) << s.status();
    EXPECT_EQ(s->total_txns, 60u);
    EXPECT_GT(s->client_update_commits + s->client_update_rejects, 0u);
    // Accepted uplinks fold into the manager alongside the server stream.
    EXPECT_EQ(sim.manager().num_committed(), s->server_commits);
  }
}

TEST(PooledSimTest, DesMixedClientsOracleAuditPassesUnderEveryScheme) {
  for (UpdateScheme scheme : kPooledSchemes) {
    SCOPED_TRACE(std::string(UpdateSchemeName(scheme)));
    SimConfig config = MixedClientConfig(scheme);
    config.record_history = true;
    config.num_client_txns = 40;
    config.warmup_txns = 10;
    BroadcastSim sim(config);
    ASSERT_TRUE(sim.Run().ok());
    const Status audit = sim.VerifyOracle();
    EXPECT_TRUE(audit.ok()) << audit.ToString();
  }
}

TEST(PooledSimTest, DesMixedClientsAreDeterministic) {
  // Uplink validation happens at event time against the overlay-merged MC
  // view; the decision stream must be a pure function of the config even
  // though the pooled batch's interleaving is not.
  for (UpdateScheme scheme : kPooledSchemes) {
    SCOPED_TRACE(std::string(UpdateSchemeName(scheme)));
    auto run = [&](uint64_t seed) {
      BroadcastSim sim(MixedClientConfig(scheme, seed));
      auto s = sim.Run();
      EXPECT_TRUE(s.ok());
      return std::tuple(s->server_commits, s->client_update_commits,
                        s->client_update_rejects);
    };
    EXPECT_EQ(run(11), run(11));
  }
}

TEST(PooledSimTest, ConcurrentEngineMixedClientsRunUnderEveryScheme) {
  for (UpdateScheme scheme : kPooledSchemes) {
    SCOPED_TRACE(std::string(UpdateSchemeName(scheme)));
    SimConfig config = MixedClientConfig(scheme);
    config.stop_after_cycles = 30;
    ConcurrentSim sim(config);
    auto s = sim.Run();
    ASSERT_TRUE(s.ok()) << s.status();
    EXPECT_EQ(s->cycles, 30u);
    EXPECT_GT(s->completed_txns, 0u);
    EXPECT_GT(s->client_update_commits + s->client_update_rejects, 0u);
    EXPECT_EQ(sim.manager().num_committed(), s->server_commits);
  }
}

TEST(PooledSimTest, ConcurrentEngineRejectsSequentialUplinks) {
  SimConfig config = MixedClientConfig(UpdateScheme::kOcc);
  config.update_scheme = UpdateScheme::kSequential;
  config.update_workers = 0;
  config.stop_after_cycles = 10;
  ConcurrentSim sim(config);
  EXPECT_EQ(sim.Run().status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace bcc
