// Property suite for the sparse and hierarchical control-matrix tiers
// (DESIGN.md §4l).
//
// The sparse matrix is a pure representation change, so its contract is
// bit-identity: across seeds, timestamp widths (including the ts = 2 and
// ts = 3 wraparound regimes), delta broadcast, and the lossy channel, every
// client decision, the final store, and the final control matrix must equal
// the dense oracle's exactly. The hierarchical matrix is conservative by
// design (MC >= C can only add spurious aborts), so its contract is safety:
// every committed read passes the end-to-end oracle audit — plus exactness
// in the degenerate singleton-group configuration, where the coarse bound
// collapses to the dense value.

#include <gtest/gtest.h>

#include <vector>

#include "net/state_digest.h"
#include "sim/broadcast_sim.h"
#include "sim/concurrent_sim.h"

namespace bcc {
namespace {

// Small but conflict-rich: short cycles, write-heavy server stream, a shared
// hot range via the short object array. ~50 cycles keeps the 25-seed sweep
// (two full runs per seed) inside a few seconds.
SimConfig SmallSparseConfig() {
  SimConfig config;
  config.algorithm = Algorithm::kFMatrix;
  config.matrix_mode = MatrixMode::kSparse;
  config.num_objects = 24;
  config.object_size_bits = 64;
  config.client_txn_length = 3;
  config.server_txn_length = 4;
  config.server_txn_interval = 3000;
  config.mean_inter_op_delay = 800;
  config.mean_inter_txn_delay = 1500;
  config.num_client_txns = 1000000;  // cutoff comes from stop_after_cycles
  config.warmup_txns = 1;
  config.timestamp_bits = 8;
  config.stop_after_cycles = 50;
  return config;
}

// ---------------------------------------------------------------------------
// Sparse bit-identity vs the dense oracle
// ---------------------------------------------------------------------------

TEST(SparseParityTest, TwentyFiveSeedsBitIdenticalToDense) {
  // Seed sweep rotating the broadcast mode: plain full-matrix broadcast,
  // snapshot+delta, and delta over the lossy channel (real loss, so delta
  // desync/resync is exercised too — the sparse run replays the identical
  // seeded fault pattern because the frames are byte-identical).
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    SimConfig config = SmallSparseConfig();
    config.seed = seed;
    switch (seed % 3) {
      case 0:
        break;
      case 1:
        config.delta_broadcast = true;
        config.delta_refresh_period = 8;
        break;
      case 2:
        config.delta_broadcast = true;
        config.delta_refresh_period = 8;
        config.channel_broadcast = true;
        config.channel_frame_bits = 512;
        config.channel_loss_rate = 0.05;
        break;
    }
    const Status status = CrossCheckSparseMode(config);
    EXPECT_TRUE(status.ok()) << "seed " << seed << ": " << status.ToString();
  }
}

TEST(SparseParityTest, WraparoundTinyStamps) {
  // ts = 2 and ts = 3 wrap the stamp window several times within the run;
  // the windowed decode is common to both representations, so decisions must
  // stay bit-identical through every wraparound.
  for (const unsigned ts_bits : {2u, 3u}) {
    const uint64_t window = uint64_t{1} << ts_bits;
    SimConfig config = SmallSparseConfig();
    config.num_objects = 12;
    config.client_txn_length = 2;
    config.timestamp_bits = ts_bits;
    config.stop_after_cycles = 6 * window;
    config.seed = 31 + ts_bits;
    const Status status = CrossCheckSparseMode(config);
    EXPECT_TRUE(status.ok()) << "ts=" << ts_bits << ": " << status.ToString();

    SimConfig delta = config;
    delta.delta_broadcast = true;
    delta.delta_refresh_period = window - 1;  // the legal maximum
    const Status delta_status = CrossCheckSparseMode(delta);
    EXPECT_TRUE(delta_status.ok()) << "ts=" << ts_bits << " delta: " << delta_status.ToString();
  }
}

TEST(SparseParityTest, ParityHoldsWithClientUpdates) {
  // Uplink update transactions mutate the manager mid-cycle; the sparse
  // incremental maintenance must track the dense path commit-for-commit.
  SimConfig config = SmallSparseConfig();
  config.num_clients = 3;
  config.client_update_fraction = 0.4;
  config.server_txn_length = 2;
  config.seed = 77;
  const Status status = CrossCheckSparseMode(config);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(SparseParityTest, CompactionIsConservativeAndAccounted) {
  // Compaction aliases stale entries upward; the server's dependency fold
  // then mixes aliased and in-window values, so a compacted run is
  // conservative-safe, NOT bit-identical to dense. The cross-check must
  // refuse it, and the end-to-end oracle audit is the correctness check:
  // every read a committed transaction performed is still consistent.
  SimConfig config = SmallSparseConfig();
  config.timestamp_bits = 4;
  config.stop_after_cycles = 120;
  config.sparse_compaction_period = 6;
  EXPECT_FALSE(CrossCheckSparseMode(config).ok())
      << "the cross-check must reject compacted runs (conservative, not identical)";

  for (const uint64_t seed : {9u, 33u}) {
    SimConfig run = config;
    run.seed = seed;
    run.record_history = true;
    BroadcastSim sim(run);
    const auto summary = sim.Run();
    ASSERT_TRUE(summary.ok()) << "seed " << seed << ": " << summary.status().ToString();
    EXPECT_GT(summary->sparse_compaction_drops, 0u)
        << "seed " << seed << ": compaction never dropped an entry; the property was vacuous";
    const Status oracle = sim.VerifyOracle();
    EXPECT_TRUE(oracle.ok()) << "seed " << seed << ": " << oracle.ToString();
  }
}

TEST(SparseParityTest, FinalDigestsMatchDense) {
  // The networked tier's end-state digest (values + ts-bit matrix residues)
  // must be representation-independent, so a sparse daemon can be audited
  // against a dense in-process oracle.
  SimConfig sparse = SmallSparseConfig();
  sparse.seed = 13;
  SimConfig dense = sparse;
  dense.matrix_mode = MatrixMode::kDense;

  BroadcastSim sparse_sim(sparse);
  ASSERT_TRUE(sparse_sim.Run().ok());
  BroadcastSim dense_sim(dense);
  ASSERT_TRUE(dense_sim.Run().ok());

  const CycleStampCodec codec(sparse.timestamp_bits);
  const uint64_t sparse_digest =
      DigestMatrixResidues(sparse_sim.manager().sparse_f_matrix(), codec);
  const uint64_t dense_digest = DigestMatrixResidues(dense_sim.manager().f_matrix(), codec);
  EXPECT_EQ(sparse_digest, dense_digest);
}

TEST(SparseConcurrentTest, EnginesAgreeInSparseMode) {
  // The cross-engine contract (sequential DES vs epoch-threaded engine)
  // holds with the sparse representation on both sides.
  for (const uint64_t seed : {7u, 13u}) {
    SimConfig config = SmallSparseConfig();
    config.num_clients = 2;
    config.seed = seed;
    const Status status = CrossCheckEngines(config);
    EXPECT_TRUE(status.ok()) << "seed " << seed << ": " << status.ToString();
  }
}

// ---------------------------------------------------------------------------
// Sparse accounting
// ---------------------------------------------------------------------------

TEST(SparseModeTest, ReportsFootprintAndPassesOracle) {
  SimConfig config = SmallSparseConfig();
  config.record_history = true;
  config.stop_after_cycles = 0;
  config.num_client_txns = 300;
  config.seed = 4;
  BroadcastSim sim(config);
  const auto summary = sim.Run();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_GT(summary->matrix_nnz, 0u);
  // The final cycle may still be open when the txn-count cutoff fires, so
  // the accounting can trail the elapsed count by at most one.
  EXPECT_GE(summary->matrix_cycles + 1, summary->cycles_elapsed);
  EXPECT_LE(summary->matrix_cycles, summary->cycles_elapsed);
  EXPECT_GT(summary->matrix_control_bytes_per_cycle, 0.0);
  EXPECT_LE(summary->matrix_nnz,
            static_cast<uint64_t>(config.num_objects) * config.num_objects);
  EXPECT_TRUE(sim.VerifyOracle().ok());
}

// ---------------------------------------------------------------------------
// Hierarchical matrix: conservative safety + degenerate exactness
// ---------------------------------------------------------------------------

SimConfig SmallHierConfig() {
  SimConfig config = SmallSparseConfig();
  config.matrix_mode = MatrixMode::kHier;
  config.use_wire_codec = false;  // hier validates raw absolute stamps
  config.hier_initial_groups = 4;
  config.hier_regroup_period = 8;
  config.hier_refine_limit = 16;
  return config;
}

TEST(HierModeTest, RunsAndPassesOracleAcrossSeeds) {
  // Conservative safety: whatever the refinement policy does, every
  // committed read must survive the end-to-end oracle audit (currency,
  // atomicity, APPROX mutual consistency).
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    SimConfig config = SmallHierConfig();
    config.record_history = true;
    config.seed = seed;
    BroadcastSim sim(config);
    const auto summary = sim.Run();
    ASSERT_TRUE(summary.ok()) << "seed " << seed << ": " << summary.status().ToString();
    EXPECT_GT(summary->hier_groups, 0u);
    EXPECT_GT(summary->matrix_nnz, 0u);
    const Status oracle = sim.VerifyOracle();
    EXPECT_TRUE(oracle.ok()) << "seed " << seed << ": " << oracle.ToString();
  }
}

TEST(HierModeTest, SingletonGroupsAreBitIdenticalToDense) {
  // With one object per group the coarse bound MC(group(i), j) degenerates
  // to the exact entry C(i, j), so hier decisions must equal dense ones
  // bit-for-bit. Freeze the policy so the partition stays singleton.
  for (const uint64_t seed : {3u, 11u, 27u}) {
    SimConfig hier = SmallHierConfig();
    hier.seed = seed;
    hier.record_decisions = true;
    hier.hier_initial_groups = hier.num_objects;
    hier.hier_min_groups = hier.num_objects;
    hier.hier_max_groups = hier.num_objects;
    hier.hier_regroup_period = 1u << 30;
    hier.hier_coarsen_idle_cycles = 1u << 30;
    SimConfig dense = hier;
    dense.matrix_mode = MatrixMode::kDense;

    BroadcastSim hier_sim(hier);
    const auto hier_summary = hier_sim.Run();
    ASSERT_TRUE(hier_summary.ok()) << hier_summary.status().ToString();
    BroadcastSim dense_sim(dense);
    const auto dense_summary = dense_sim.Run();
    ASSERT_TRUE(dense_summary.ok()) << dense_summary.status().ToString();

    EXPECT_EQ(hier_summary->hier.spurious_aborts, 0u) << "seed " << seed;
    ASSERT_EQ(hier_sim.decisions().size(), dense_sim.decisions().size());
    for (size_t c = 0; c < hier_sim.decisions().size(); ++c) {
      EXPECT_TRUE(hier_sim.decisions()[c] == dense_sim.decisions()[c])
          << "seed " << seed << " client " << c << " decisions diverged";
    }
    EXPECT_TRUE(hier_sim.manager().store().committed() ==
                dense_sim.manager().store().committed())
        << "seed " << seed;
  }
}

TEST(HierModeTest, AdaptivePolicyReportsActivity) {
  // A coarse initial partition under a conflict-heavy stream must show the
  // policy doing something: refinements or regroup activity in the stats.
  SimConfig config = SmallHierConfig();
  config.hier_initial_groups = 2;
  config.stop_after_cycles = 120;
  config.seed = 21;
  BroadcastSim sim(config);
  const auto summary = sim.Run();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_GT(summary->hier.refinements + summary->hier.regroups + summary->hier.group_splits, 0u);
}

// ---------------------------------------------------------------------------
// Mode plumbing and validation
// ---------------------------------------------------------------------------

TEST(MatrixModeConfigTest, ParseMatrixOptionRoundTrips) {
  SimConfig config;
  ASSERT_TRUE(ParseMatrixOption("sparse", &config).ok());
  EXPECT_EQ(config.matrix_mode, MatrixMode::kSparse);
  ASSERT_TRUE(ParseMatrixOption("hier", &config).ok());
  EXPECT_EQ(config.matrix_mode, MatrixMode::kHier);
  ASSERT_TRUE(ParseMatrixOption("dense", &config).ok());
  EXPECT_EQ(config.matrix_mode, MatrixMode::kDense);
  ASSERT_TRUE(ParseMatrixOption("group:8", &config).ok());
  EXPECT_EQ(config.num_groups, 8u);
  EXPECT_FALSE(ParseMatrixOption("group:", &config).ok());
  EXPECT_FALSE(ParseMatrixOption("group:x", &config).ok());
  EXPECT_FALSE(ParseMatrixOption("banana", &config).ok());
}

TEST(MatrixModeConfigTest, ValidateRejectsUnsupportedCombinations) {
  SimConfig sparse = SmallSparseConfig();
  sparse.enable_cache = true;
  sparse.cache_currency_bound = 100000;
  EXPECT_FALSE(sparse.Validate().ok()) << "sparse + cache must be rejected";

  SimConfig compaction = SmallSparseConfig();
  compaction.sparse_compaction_period = 4;
  compaction.use_wire_codec = false;
  EXPECT_FALSE(compaction.Validate().ok()) << "compaction requires the wire codec";

  SimConfig hier = SmallHierConfig();
  hier.use_wire_codec = true;
  EXPECT_FALSE(hier.Validate().ok()) << "hier + wire codec must be rejected";

  SimConfig hier_delta = SmallHierConfig();
  hier_delta.delta_broadcast = true;
  EXPECT_FALSE(hier_delta.Validate().ok()) << "hier + delta must be rejected";
}

TEST(MatrixModeConfigTest, ConcurrentSimRejectsHierAndCompaction) {
  SimConfig hier = SmallHierConfig();
  ASSERT_TRUE(hier.Validate().ok());
  ConcurrentSim hier_sim(hier);
  EXPECT_FALSE(hier_sim.Run().ok());

  SimConfig compaction = SmallSparseConfig();
  compaction.sparse_compaction_period = 4;
  ASSERT_TRUE(compaction.Validate().ok());
  ConcurrentSim compaction_sim(compaction);
  EXPECT_FALSE(compaction_sim.Run().ok());
}

}  // namespace
}  // namespace bcc
