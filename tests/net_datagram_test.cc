// Tests for the real-transport datagram codec (net/datagram.h): golden-bytes
// freezes of every message kind (the cross-host portability contract —
// serialization is explicit little-endian, never struct overlay), bounds-
// checked decoding of damaged datagrams, and cycle-datagram packing.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/datagram.h"

namespace bcc {
namespace {

std::string ToHex(const std::vector<uint8_t>& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

std::vector<uint8_t> FromHex(const std::string& hex) {
  std::vector<uint8_t> out;
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<uint8_t>(std::stoul(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Golden bytes: a failure here means the wire format changed and deployed
// bcc_serverd / bcc_client builds would stop interoperating. Change the
// protocol deliberately, don't refresh the constants casually.
// ---------------------------------------------------------------------------

TEST(DatagramGoldenTest, HelloBytesAreFrozen) {
  HelloMsg msg;
  msg.client_id = 0x01020304;
  EXPECT_EQ(ToHex(EncodeHello(msg)), "c2bc0104030201");

  const auto decoded = DecodeHello(FromHex("c2bc0104030201"));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->client_id, 0x01020304u);
}

TEST(DatagramGoldenTest, HelloAckBytesAreFrozen) {
  HelloAckMsg msg;
  msg.client_index = 3;
  msg.num_objects = 300;
  msg.ts_bits = 8;
  msg.control_mode = 1;
  msg.frame_bits = 512;
  msg.cycles = 64;
  const std::string golden = "c2bc02030000002c0100000801000200004000000000000000";
  EXPECT_EQ(ToHex(EncodeHelloAck(msg)), golden);

  const auto decoded = DecodeHelloAck(FromHex(golden));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->client_index, 3u);
  EXPECT_EQ(decoded->num_objects, 300u);
  EXPECT_EQ(decoded->ts_bits, 8u);
  EXPECT_EQ(decoded->control_mode, 1u);
  EXPECT_EQ(decoded->frame_bits, 512u);
  EXPECT_EQ(decoded->cycles, 64u);
}

TEST(DatagramGoldenTest, CycleDataBytesAreFrozen) {
  CycleDataHeader header;
  header.cycle = 0x0102030405060708ull;
  header.dgram_seq = 1;
  header.dgram_count = 2;
  header.frame_count = 2;
  header.cycle_frames = 5;
  header.frame_bytes = 4;
  Frame f1;
  f1.bytes = {0xAA, 0xBB, 0xCC, 0xDD};
  Frame f2;
  f2.bytes = {0x11, 0x22, 0x33, 0x44};
  const std::vector<Frame> frames = {f1, f2};
  const std::string golden = "c2bc03080706050403020101000200020005000400aabbccdd11223344";
  EXPECT_EQ(ToHex(EncodeCycleData(header, frames)), golden);

  const auto decoded = DecodeCycleData(FromHex(golden));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->header.cycle, 0x0102030405060708ull);
  EXPECT_EQ(decoded->header.dgram_seq, 1u);
  EXPECT_EQ(decoded->header.dgram_count, 2u);
  EXPECT_EQ(decoded->header.cycle_frames, 5u);
  ASSERT_EQ(decoded->frames.size(), 2u);
  EXPECT_EQ(decoded->frames[0].bytes, f1.bytes);
  EXPECT_EQ(decoded->frames[1].bytes, f2.bytes);
}

TEST(DatagramGoldenTest, StatsReqBytesAreFrozen) {
  StatsReqMsg msg;
  msg.final_cycle = 64;
  const std::string golden = "c2bc044000000000000000";
  EXPECT_EQ(ToHex(EncodeStatsReq(msg)), golden);
  const auto decoded = DecodeStatsReq(FromHex(golden));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->final_cycle, 64u);
}

TEST(DatagramGoldenTest, UpdateBytesAreFrozen) {
  UpdateMsg msg;
  msg.client_index = 2;
  msg.seq = 9;
  msg.reads = {{5, 100}, {6, 101}};
  msg.writes = {7, 8};
  const std::string golden =
      "c2bc060200000009000000020002000500000064000000000000000600000065"
      "000000000000000700000008000000";
  EXPECT_EQ(ToHex(EncodeUpdate(msg)), golden);

  const auto decoded = DecodeUpdate(FromHex(golden));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->client_index, 2u);
  EXPECT_EQ(decoded->seq, 9u);
  ASSERT_EQ(decoded->reads.size(), 2u);
  EXPECT_EQ(decoded->reads[0].object, 5u);
  EXPECT_EQ(decoded->reads[0].cycle, 100u);
  EXPECT_EQ(decoded->reads[1].object, 6u);
  EXPECT_EQ(decoded->reads[1].cycle, 101u);
  EXPECT_EQ(decoded->writes, (std::vector<ObjectId>{7, 8}));
}

TEST(DatagramGoldenTest, UpdateReplyBytesAreFrozen) {
  UpdateReplyMsg msg;
  msg.seq = 9;
  msg.accepted = true;
  const std::string golden = "c2bc070900000001";
  EXPECT_EQ(ToHex(EncodeUpdateReply(msg)), golden);
  const auto decoded = DecodeUpdateReply(FromHex(golden));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->seq, 9u);
  EXPECT_TRUE(decoded->accepted);
}

TEST(DatagramGoldenTest, StatsBytesAreFrozen) {
  StatsMsg msg;
  msg.client_index = 1;
  msg.digest = 0x1122334455667788ull;
  msg.txns = 10;
  msg.commits = 8;
  msg.aborts = 2;
  msg.p50_us = 1000;
  msg.p99_us = 2000;
  msg.channel.frames_sent = 100;
  msg.channel.frames_dropped = 1;
  msg.channel.stalls = 3;
  const std::string golden =
      "c2bc050100000088776655443322110a00000000000000080000000000000002"
      "00000000000000e803000000000000d007000000000000640000000000000001"
      "0000000000000000000000000000000000000000000000000000000000000000"
      "0000000000000000000000000000000000000000000000000000000000000003"
      "00000000000000000000000000000000000000000000000000000000000000";
  EXPECT_EQ(ToHex(EncodeStats(msg)), golden);

  const auto decoded = DecodeStats(FromHex(golden));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->digest, 0x1122334455667788ull);
  EXPECT_EQ(decoded->channel.frames_sent, 100u);
  EXPECT_EQ(decoded->channel.frames_dropped, 1u);
  EXPECT_EQ(decoded->channel.stalls, 3u);
  EXPECT_EQ(decoded->channel, msg.channel);
}

TEST(DatagramGoldenTest, MetricsReqBytesAreFrozen) {
  MetricsReqMsg msg;
  msg.token = 0x01020304;
  const std::string golden = "c2bc0804030201";
  EXPECT_EQ(ToHex(EncodeMetricsReq(msg)), golden);
  const auto decoded = DecodeMetricsReq(FromHex(golden));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->token, 0x01020304u);
}

TEST(DatagramGoldenTest, MetricsBytesAreFrozen) {
  MetricsMsg msg;
  msg.token = 7;
  msg.node_kind = kMetricsNodeClient;
  msg.json = "{\"a\":1}";
  // token, node_kind, truncated, json_len, json bytes.
  const std::string golden = "c2bc09070000000100070000007b2261223a317d";
  EXPECT_EQ(ToHex(EncodeMetrics(msg)), golden);

  const auto decoded = DecodeMetrics(FromHex(golden));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->token, 7u);
  EXPECT_EQ(decoded->node_kind, kMetricsNodeClient);
  EXPECT_FALSE(decoded->truncated);
  EXPECT_EQ(decoded->json, "{\"a\":1}");
}

TEST(DatagramTest, MetricsOversizedPayloadIsTruncatedAndFlagged) {
  MetricsMsg msg;
  msg.token = 1;
  msg.json = std::string(100, 'x');
  const auto wire = EncodeMetrics(msg, /*max_json_bytes=*/16);
  const auto decoded = DecodeMetrics(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->truncated);
  EXPECT_EQ(decoded->json, std::string(16, 'x'));

  // At or under the budget the payload survives intact and unflagged.
  const auto fit = DecodeMetrics(EncodeMetrics(msg, 100));
  ASSERT_TRUE(fit.ok());
  EXPECT_FALSE(fit->truncated);
  EXPECT_EQ(fit->json, msg.json);
}

TEST(DatagramTest, TruncatedMetricsIsRejected) {
  MetricsMsg msg;
  msg.token = 9;
  msg.json = "{\"counters\":{}}";
  const std::vector<uint8_t> wire = EncodeMetrics(msg);
  for (size_t cut = 3; cut < wire.size(); ++cut) {
    std::vector<uint8_t> damaged(wire.begin(), wire.begin() + static_cast<long>(cut));
    EXPECT_FALSE(DecodeMetrics(damaged).ok()) << "cut at " << cut;
  }
  EXPECT_TRUE(DecodeMetrics(wire).ok());
}

// ---------------------------------------------------------------------------
// Damage handling
// ---------------------------------------------------------------------------

TEST(DatagramTest, PeekKindRejectsForeignAndShortDatagrams) {
  EXPECT_FALSE(PeekKind({}).ok());
  const std::vector<uint8_t> short_bytes = {0xC2};
  EXPECT_FALSE(PeekKind(short_bytes).ok());
  const std::vector<uint8_t> bad_magic = {0x00, 0x00, 0x01};
  EXPECT_FALSE(PeekKind(bad_magic).ok());
  const std::vector<uint8_t> bad_kind = {0xC2, 0xBC, 0x63};
  EXPECT_FALSE(PeekKind(bad_kind).ok());
  const std::vector<uint8_t> good = {0xC2, 0xBC, 0x01};
  const auto kind = PeekKind(good);
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(*kind, MsgKind::kHello);
}

TEST(DatagramTest, TruncatedCycleDataDropsPartialTrailingFrame) {
  CycleDataHeader header;
  header.cycle = 7;
  header.dgram_seq = 0;
  header.dgram_count = 1;
  header.frame_count = 2;
  header.cycle_frames = 2;
  header.frame_bytes = 4;
  Frame f1;
  f1.bytes = {0xAA, 0xBB, 0xCC, 0xDD};
  Frame f2;
  f2.bytes = {0x11, 0x22, 0x33, 0x44};
  const std::vector<Frame> frames = {f1, f2};
  std::vector<uint8_t> wire = EncodeCycleData(header, frames);

  // Cut into the second frame: the first still decodes, the partial second
  // is dropped as loss (never a short frame handed to the CRC layer).
  wire.resize(wire.size() - 2);
  const auto decoded = DecodeCycleData(wire);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->frames.size(), 1u);
  EXPECT_EQ(decoded->frames[0].bytes, f1.bytes);

  // Cut into the header: the datagram is rejected outright.
  std::vector<uint8_t> header_cut = EncodeCycleData(header, frames);
  header_cut.resize(10);
  EXPECT_FALSE(DecodeCycleData(header_cut).ok());
}

TEST(DatagramTest, TruncatedUpdateIsRejected) {
  UpdateMsg msg;
  msg.client_index = 2;
  msg.seq = 9;
  msg.reads = {{5, 100}};
  msg.writes = {7};
  std::vector<uint8_t> wire = EncodeUpdate(msg);
  for (size_t cut = 3; cut < wire.size(); ++cut) {
    std::vector<uint8_t> damaged(wire.begin(), wire.begin() + static_cast<long>(cut));
    EXPECT_FALSE(DecodeUpdate(damaged).ok()) << "cut at " << cut;
  }
  EXPECT_TRUE(DecodeUpdate(wire).ok());
}

// ---------------------------------------------------------------------------
// Cycle packing
// ---------------------------------------------------------------------------

TEST(DatagramTest, PackCycleDatagramsSplitsAndRoundTrips) {
  const size_t kFrameBytes = 64;
  std::vector<Frame> frames(10);
  for (size_t i = 0; i < frames.size(); ++i) {
    frames[i].bytes.assign(kFrameBytes, static_cast<uint8_t>(i));
  }

  // Room for 3 frames per datagram -> 4 datagrams (3+3+3+1).
  const size_t dgram_bytes = 21 + 3 * kFrameBytes;
  const auto dgrams = PackCycleDatagrams(42, frames, dgram_bytes);
  ASSERT_EQ(dgrams.size(), 4u);

  size_t total = 0;
  for (size_t i = 0; i < dgrams.size(); ++i) {
    ASSERT_LE(dgrams[i].size(), dgram_bytes);
    const auto decoded = DecodeCycleData(dgrams[i]);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->header.cycle, 42u);
    EXPECT_EQ(decoded->header.dgram_seq, i);
    EXPECT_EQ(decoded->header.dgram_count, 4u);
    EXPECT_EQ(decoded->header.cycle_frames, frames.size());
    for (const Frame& f : decoded->frames) {
      EXPECT_EQ(f.bytes, frames[total].bytes);
      ++total;
    }
  }
  EXPECT_EQ(total, frames.size());
}

TEST(DatagramTest, PackCycleDatagramsAlwaysCarriesAtLeastOneFrame) {
  // A datagram budget smaller than one frame still makes progress (the
  // kernel fragments oversized datagrams; we never loop forever).
  std::vector<Frame> frames(2);
  frames[0].bytes.assign(128, 0x01);
  frames[1].bytes.assign(128, 0x02);
  const auto dgrams = PackCycleDatagrams(1, frames, 64);
  ASSERT_EQ(dgrams.size(), 2u);
  for (const auto& d : dgrams) {
    const auto decoded = DecodeCycleData(d);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->frames.size(), 1u);
  }
}

}  // namespace
}  // namespace bcc
