#include "sim/broadcast_sim.h"

#include <gtest/gtest.h>

namespace bcc {
namespace {

SimConfig SmallConfig(Algorithm a, uint64_t seed = 42) {
  SimConfig c;
  c.algorithm = a;
  c.num_objects = 20;
  c.object_size_bits = 512;
  c.client_txn_length = 3;
  c.server_txn_length = 4;
  c.server_txn_interval = 40000;
  c.mean_inter_op_delay = 2000;
  c.mean_inter_txn_delay = 4000;
  c.num_client_txns = 60;
  c.warmup_txns = 20;
  c.seed = seed;
  return c;
}

TEST(BroadcastSimTest, RunsToCompletionForAllAlgorithms) {
  for (Algorithm a : kAllAlgorithms) {
    auto s = RunSimulation(SmallConfig(a));
    ASSERT_TRUE(s.ok()) << AlgorithmName(a) << ": " << s.status();
    EXPECT_EQ(s->total_txns, 60u);
    EXPECT_EQ(s->measured_txns, 40u);
    EXPECT_GT(s->mean_response_time, 0.0);
    EXPECT_GT(s->cycles_elapsed, 0u);
    EXPECT_GT(s->server_commits, 0u);
    EXPECT_EQ(s->censored_txns, 0u);
  }
}

TEST(BroadcastSimTest, DeterministicGivenSeed) {
  for (Algorithm a : kAllAlgorithms) {
    auto s1 = RunSimulation(SmallConfig(a, 7));
    auto s2 = RunSimulation(SmallConfig(a, 7));
    ASSERT_TRUE(s1.ok() && s2.ok());
    EXPECT_EQ(s1->mean_response_time, s2->mean_response_time) << AlgorithmName(a);
    EXPECT_EQ(s1->total_restarts, s2->total_restarts);
    EXPECT_EQ(s1->sim_end_time, s2->sim_end_time);
  }
}

TEST(BroadcastSimTest, DifferentSeedsDiffer) {
  auto s1 = RunSimulation(SmallConfig(Algorithm::kRMatrix, 1));
  auto s2 = RunSimulation(SmallConfig(Algorithm::kRMatrix, 2));
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_NE(s1->sim_end_time, s2->sim_end_time);
}

TEST(BroadcastSimTest, RunTwiceFails) {
  BroadcastSim sim(SmallConfig(Algorithm::kFMatrix));
  ASSERT_TRUE(sim.Run().ok());
  EXPECT_EQ(sim.Run().status().code(), StatusCode::kFailedPrecondition);
}

TEST(BroadcastSimTest, InvalidConfigRejected) {
  SimConfig c = SmallConfig(Algorithm::kFMatrix);
  c.client_txn_length = 0;
  EXPECT_FALSE(RunSimulation(c).ok());
}

TEST(BroadcastSimTest, FMatrixNoHasShorterCyclesThanFMatrix) {
  auto f = RunSimulation(SmallConfig(Algorithm::kFMatrix));
  auto fno = RunSimulation(SmallConfig(Algorithm::kFMatrixNo));
  ASSERT_TRUE(f.ok() && fno.ok());
  // Same simulated span contains more F-Matrix-No cycles per unit time;
  // equivalently its end time is smaller for the same transaction count
  // (shorter cycles -> shorter waits).
  EXPECT_LT(fno->mean_response_time, f->mean_response_time * 1.2);
}

TEST(BroadcastSimTest, HigherContentionHurtsDatacycleMost) {
  SimConfig base = SmallConfig(Algorithm::kDatacycle);
  base.client_txn_length = 6;
  base.num_client_txns = 120;
  base.warmup_txns = 40;
  auto d = RunSimulation(base);
  base.algorithm = Algorithm::kFMatrix;
  auto f = RunSimulation(base);
  ASSERT_TRUE(d.ok() && f.ok());
  EXPECT_GT(d->restart_ratio, f->restart_ratio);
}

TEST(BroadcastSimTest, CensoringGuardFires) {
  SimConfig c = SmallConfig(Algorithm::kDatacycle);
  c.client_txn_length = 10;
  c.server_txn_interval = 2000;  // extreme contention
  c.max_restarts_per_txn = 3;
  c.num_client_txns = 10;
  c.warmup_txns = 2;
  auto s = RunSimulation(c);
  ASSERT_TRUE(s.ok());
  EXPECT_GT(s->censored_txns, 0u);
}

TEST(BroadcastSimTest, CacheServesRepeatedReads) {
  SimConfig c = SmallConfig(Algorithm::kFMatrix);
  c.num_objects = 5;  // tiny database: plenty of repeats
  c.client_txn_length = 3;
  c.enable_cache = true;
  c.cache_currency_bound = 10'000'000;  // generous T
  auto s = RunSimulation(c);
  ASSERT_TRUE(s.ok());
  EXPECT_GT(s->cache_hits, 0u);
}

TEST(BroadcastSimTest, CacheLowersResponseTime) {
  SimConfig c = SmallConfig(Algorithm::kFMatrix);
  c.num_objects = 8;
  auto without = RunSimulation(c);
  c.enable_cache = true;
  c.cache_currency_bound = 50'000'000;
  auto with = RunSimulation(c);
  ASSERT_TRUE(without.ok() && with.ok());
  EXPECT_LT(with->mean_response_time, without->mean_response_time);
}

TEST(BroadcastSimTest, GroupedSpectrumRunsAndOrdersSensibly) {
  // g between 1 and n: response should be bounded by the pure variants'
  // behaviors in cycle length; just assert it runs and aborts stay sane.
  SimConfig c = SmallConfig(Algorithm::kFMatrix);
  c.num_groups = 4;
  auto s = RunSimulation(c);
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_GT(s->measured_txns, 0u);
}

TEST(BroadcastSimTest, ZeroTimestampWindowStillSafe) {
  // 1-bit stamps alias aggressively; the run must still complete (spurious
  // aborts only).
  SimConfig c = SmallConfig(Algorithm::kFMatrix);
  c.timestamp_bits = 1;
  c.max_restarts_per_txn = 100000;
  auto s = RunSimulation(c);
  ASSERT_TRUE(s.ok());
}

TEST(BroadcastSimTest, OracleRequiresRecordingFlag) {
  BroadcastSim sim(SmallConfig(Algorithm::kFMatrix));
  ASSERT_TRUE(sim.Run().ok());
  EXPECT_EQ(sim.BuildOracleHistory().status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace bcc
