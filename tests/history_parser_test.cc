#include "history/history_parser.h"

#include <gtest/gtest.h>

namespace bcc {
namespace {

TEST(HistoryParserTest, ParsesPaperNotation) {
  auto parsed = ParseHistory("r1(IBM) w2(IBM) c2 r3(IBM) r3(Sun) w4(Sun) c4 r1(Sun)");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->history.size(), 8u);
  EXPECT_EQ(parsed->object_names, (std::vector<std::string>{"IBM", "Sun"}));
  EXPECT_EQ(parsed->object_ids.at("IBM"), 0u);
  EXPECT_EQ(parsed->object_ids.at("Sun"), 1u);
}

TEST(HistoryParserTest, RoundTripWithNames) {
  const std::string text = "r1(IBM) w2(IBM) c2 a3";
  auto parsed = ParseHistory(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->ToString(), text);
}

TEST(HistoryParserTest, MultiDigitTxnIds) {
  auto parsed = ParseHistory("r12(x) c12");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->history.ops()[0].txn, 12u);
}

TEST(HistoryParserTest, IgnoresExtraWhitespace) {
  auto parsed = ParseHistory("  r1(x)\n\tw2(x)   c2  c1 ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->history.size(), 4u);
}

TEST(HistoryParserTest, RejectsUnknownOperation) {
  EXPECT_FALSE(ParseHistory("x1(y)").ok());
}

TEST(HistoryParserTest, RejectsMissingTxnNumber) {
  EXPECT_FALSE(ParseHistory("r(x)").ok());
}

TEST(HistoryParserTest, RejectsTxnZero) {
  EXPECT_FALSE(ParseHistory("r0(x)").ok());
}

TEST(HistoryParserTest, RejectsMalformedParens) {
  EXPECT_FALSE(ParseHistory("r1 x)").ok());
  EXPECT_FALSE(ParseHistory("r1(x").ok());
  EXPECT_FALSE(ParseHistory("r1()").ok());
}

TEST(HistoryParserTest, RejectsOpsAfterCommitViaValidate) {
  EXPECT_FALSE(ParseHistory("c1 r1(x)").ok());
}

TEST(HistoryParserTest, CommitAndAbortNeedNoObject) {
  auto parsed = ParseHistory("w1(x) c1 w2(x) a2");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->history.ops()[1].type, OpType::kCommit);
  EXPECT_EQ(parsed->history.ops()[3].type, OpType::kAbort);
}

TEST(HistoryParserTest, ObjectNamesWithUnderscoresAndDigits) {
  auto parsed = ParseHistory("r1(ob_42) w1(ob_42) c1");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->object_names[0], "ob_42");
}

}  // namespace
}  // namespace bcc
