// Decision-log audit (labels: net, obs): runs the real daemon engine and
// several client runtimes in-process over loopback UDP with client updates
// enabled, then replays the daemon's exported per-uplink accept/reject
// decision log through the paper's offline machinery — the History class and
// the conflict-serializability checker — to prove the live tier's validation
// decisions describe a serializable execution.
//
// Replay ordering (mirrors the daemon's fold discipline): the snapshot of
// cycle c is broadcast BEFORE the commits labeled cycle c fold, and an
// uplink read recorded at cycle c observed exactly the commits labeled
// <= c-1 (the validator rejects when last_write >= read cycle). So reads
// recorded at cycle c sort before the cycle-c fold, and folded operations
// sort by their global commit seq — the store's actual commit order.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cc/conflict_serializability.h"
#include "history/history.h"
#include "net/client_runtime.h"
#include "net/net_config.h"
#include "net/server_daemon.h"
#include "obs/json.h"

namespace bcc {
namespace {

constexpr uint32_t kObjects = 48;
constexpr uint64_t kCycles = 32;
constexpr uint32_t kClients = 3;
constexpr uint64_t kSeed = 7;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// One operation tagged with its position in the tier's global order.
struct KeyedOp {
  Cycle cycle = 0;
  int phase = 0;  ///< 0 = snapshot reads, 1 = cycle fold, 2 = terminal aborts
  uint64_t seq = 0;
  Operation op = Operation::Commit(kNoTxn);
};

bool KeyLess(const KeyedOp& a, const KeyedOp& b) {
  if (a.cycle != b.cycle) return a.cycle < b.cycle;
  if (a.phase != b.phase) return a.phase < b.phase;
  return a.seq < b.seq;
}

/// Rebuilds the run's totally ordered history from the exported decision
/// log. Rejected uplinks contribute their reads and an abort; their writes
/// were never applied and are omitted.
History ReplayHistory(const DecisionLog& log) {
  std::vector<KeyedOp> ops;
  for (const ServerCommitRecord& s : log.server_commits) {
    // Server transactions execute sequentially inside the fold: reads,
    // writes, and commit all live at the fold point in commit-seq order.
    for (const ObjectId ob : s.reads) ops.push_back({s.cycle, 1, s.seq, Operation::Read(s.id, ob)});
    for (const ObjectId ob : s.writes) {
      ops.push_back({s.cycle, 1, s.seq, Operation::Write(s.id, ob)});
    }
    ops.push_back({s.cycle, 1, s.seq, Operation::Commit(s.id)});
  }
  for (const UplinkDecision& d : log.uplinks) {
    if (d.accepted) {
      for (const ReadRecord& r : d.reads) {
        ops.push_back({r.cycle, 0, d.seq, Operation::Read(d.id, r.object)});
      }
      for (const ObjectId ob : d.writes) {
        ops.push_back({d.cycle, 1, d.seq, Operation::Write(d.id, ob)});
      }
      ops.push_back({d.cycle, 1, d.seq, Operation::Commit(d.id)});
    } else {
      for (const ReadRecord& r : d.reads) {
        ops.push_back({r.cycle, 0, UINT64_MAX, Operation::Read(d.id, r.object)});
      }
      ops.push_back({d.cycle, 2, UINT64_MAX, Operation::Abort(d.id)});
    }
  }
  std::stable_sort(ops.begin(), ops.end(), KeyLess);
  History h;
  for (const KeyedOp& k : ops) h.Append(k.op);
  return h;
}

TEST(NetDecisionLogTest, ReplayedDecisionLogIsConflictSerializable) {
  const std::string dir = ::testing::TempDir();
  const std::string endpoint_file = dir + "/bcc_decisions.ep";
  const std::string decisions_path = dir + "/bcc_decisions.json";
  ::unlink(endpoint_file.c_str());
  ::unlink(decisions_path.c_str());

  SimConfig sim;
  sim.num_objects = kObjects;
  sim.object_size_bits = 2048;
  sim.seed = kSeed;
  sim.num_clients = kClients;
  sim.stop_after_cycles = kCycles;
  sim.client_update_fraction = 0.5;

  NetConfig server_net;
  server_net.listen = "127.0.0.1:0";
  server_net.endpoint_file = endpoint_file;
  server_net.expected_clients = kClients;
  server_net.max_wall_ms = 120000;
  server_net.decisions_out = decisions_path;

  ServerReport server_report;
  Status server_status = Status::OK();
  std::thread server([&] { server_status = RunServerDaemon(server_net, sim, &server_report); });

  std::string endpoint;
  for (int i = 0; i < 400 && endpoint.empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    endpoint = ReadFile(endpoint_file);
  }
  while (!endpoint.empty() && (endpoint.back() == '\n' || endpoint.back() == '\r')) {
    endpoint.pop_back();
  }
  ASSERT_FALSE(endpoint.empty()) << "daemon never wrote its endpoint file";

  std::vector<ClientReport> reports(kClients);
  std::vector<Status> statuses(kClients, Status::OK());
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (uint32_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      NetConfig client_net;
      client_net.connect = endpoint;
      client_net.client_id = c + 1;
      client_net.max_wall_ms = 120000;
      statuses[c] = RunClientRuntime(client_net, sim, &reports[c]);
    });
  }
  for (std::thread& t : threads) t.join();
  server.join();
  ASSERT_TRUE(server_status.ok()) << server_status.ToString();
  for (uint32_t c = 0; c < kClients; ++c) {
    ASSERT_TRUE(statuses[c].ok()) << "client " << c << ": " << statuses[c].ToString();
    EXPECT_EQ(reports[c].digest, server_report.digest) << "client " << c << " diverged";
  }

  // The log must reconcile exactly with the run's summary counters.
  const DecisionLog& log = server_report.decisions;
  EXPECT_EQ(log.server_commits.size(), server_report.server_commits);
  uint64_t accepts = 0;
  uint64_t rejects = 0;
  for (const UplinkDecision& d : log.uplinks) {
    (d.accepted ? accepts : rejects) += 1;
    EXPECT_LT(d.client_index, kClients);
    if (d.accepted) {
      EXPECT_FALSE(d.writes.empty()) << "accepted uplink " << d.id << " wrote nothing";
    } else {
      // Rejections carry the structured conflict that fired: the object
      // whose post-read overwrite invalidated the read.
      EXPECT_EQ(d.cause.cause, AbortCause::kUplinkReject);
      EXPECT_GT(d.cause.c_ij, 0u) << "reject without an overwriting cycle";
      EXPECT_GE(d.cause.c_ij, d.cause.read_cycle);
    }
  }
  EXPECT_EQ(accepts, server_report.uplink_accepts);
  EXPECT_EQ(rejects, server_report.uplink_rejects);
  ASSERT_GT(accepts, 0u) << "workload produced no accepted uplinks; nothing audited";

  // Commit seqs are the store's total commit order: dense, starting at 1.
  std::vector<uint64_t> seqs;
  for (const ServerCommitRecord& s : log.server_commits) seqs.push_back(s.seq);
  for (const UplinkDecision& d : log.uplinks) {
    if (d.accepted) seqs.push_back(d.seq);
  }
  std::sort(seqs.begin(), seqs.end());
  for (size_t i = 0; i < seqs.size(); ++i) {
    ASSERT_EQ(seqs[i], i + 1) << "commit seq sequence has a gap or duplicate";
  }

  // The audit: the replayed interleaved history must be structurally valid
  // and conflict-serializable — the paper's acceptance criterion is
  // conservative, so every accepted interleaving has a serial equivalent.
  const History h = ReplayHistory(log);
  ASSERT_FALSE(h.empty());
  ASSERT_TRUE(h.Validate().ok()) << h.ToString();
  EXPECT_TRUE(IsConflictSerializable(h));
  // The projection onto update transactions (the sub-history the paper's
  // criteria are actually defined over) must pass as well.
  EXPECT_TRUE(IsConflictSerializable(h.UpdateSubHistory()));

  // The exported file is one strict-JSON document of the same log.
  const std::string file = ReadFile(decisions_path);
  ASSERT_FALSE(file.empty());
  EXPECT_TRUE(ValidateJson(file).ok());
  EXPECT_EQ(file, log.ToJson() + "\n");
}

}  // namespace
}  // namespace bcc
